//! `dss-check` — the workbench's verification gate.
//!
//! ```text
//! dss-check lint        # workspace lint rules
//! dss-check races       # happens-before race detection over Q3/Q6/Q12
//! dss-check invariants  # coherence invariants over the baseline suite
//! dss-check all         # everything above
//! ```
//!
//! Exits 0 when every requested pass is clean, 1 on any finding, 2 on usage
//! or environment errors. Build with `--features check-invariants` to also
//! arm the simulator's per-transaction observer during the invariants pass.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::process::ExitCode;

use dss_check::{
    check_baseline_suite, detect_races, find_workspace_root, lint_workspace, Allowlist,
};
use dss_core::{query_label, Workbench, STUDIED_QUERIES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    let (run_lint, run_races, run_invariants) = match mode {
        Some("lint") => (true, false, false),
        Some("races") => (false, true, false),
        Some("invariants") => (false, false, true),
        Some("all") => (true, true, true),
        _ => {
            eprintln!("usage: dss-check <lint|races|invariants|all>");
            return ExitCode::from(2);
        }
    };

    let mut findings = 0usize;
    if run_lint {
        match lint() {
            Ok(n) => findings += n,
            Err(e) => {
                eprintln!("lint: {e}");
                return ExitCode::from(2);
            }
        }
    }
    // Both trace-driven passes share one workbench (the trace cache holds a
    // query's traces across both).
    if run_races || run_invariants {
        let mut wb = Workbench::paper();
        if run_races {
            findings += races(&mut wb);
        }
        if run_invariants {
            findings += invariants(&mut wb);
        }
    }
    if findings > 0 {
        eprintln!("dss-check: {findings} finding(s)");
        ExitCode::from(1)
    } else {
        println!("dss-check: clean");
        ExitCode::SUCCESS
    }
}

/// Runs the workspace lint; returns the number of findings.
fn lint() -> std::io::Result<usize> {
    let cwd = std::env::current_dir()?;
    let root = find_workspace_root(&cwd)?;
    let mut allow = Allowlist::load(&root)?;
    let findings = lint_workspace(&root, &mut allow)?;
    for f in &findings {
        eprintln!("lint: {f}");
    }
    let stale = allow.unused();
    for entry in &stale {
        eprintln!("lint: stale allowlist entry `{entry}` no longer matches anything");
    }
    println!(
        "lint: {} finding(s), {} stale allowlist entr(ies)",
        findings.len(),
        stale.len()
    );
    Ok(findings.len() + stale.len())
}

/// Runs the race detector over the studied queries; returns findings.
fn races(wb: &mut Workbench) -> usize {
    let mut findings = 0;
    for query in STUDIED_QUERIES {
        let traces = wb.traces(query, 0);
        match detect_races(&traces) {
            Ok(report) => {
                for race in &report.races {
                    eprintln!("races: {}: {race}", query_label(query));
                }
                println!(
                    "races: {}: {} race(s) over {} shared accesses in {} classes",
                    query_label(query),
                    report.races.len(),
                    report.total_checked(),
                    report.checked.len()
                );
                findings += report.races.len();
            }
            Err(e) => {
                eprintln!("races: {}: traces not analyzable: {e}", query_label(query));
                findings += 1;
            }
        }
    }
    findings
}

/// Runs the coherence invariant suite; returns findings.
fn invariants(wb: &mut Workbench) -> usize {
    match check_baseline_suite(wb) {
        Ok(summaries) => {
            let observer = if cfg!(feature = "check-invariants") {
                "per-transaction observer armed"
            } else {
                "post-run sweep only"
            };
            println!(
                "invariants: {} run(s) verified ({observer})",
                summaries.len()
            );
            0
        }
        Err(failure) => {
            eprintln!("invariants: {failure}");
            1
        }
    }
}
