//! `dss-check` — the workbench's verification gate.
//!
//! ```text
//! dss-check lint         # workspace lint rules (lexer-based)
//! dss-check races        # happens-before race detection over Q3/Q6/Q12
//! dss-check invariants   # coherence invariants over the baseline suite
//! dss-check alloc        # allocation audit of Machine::run (counting allocator)
//! dss-check fault        # fault-injection campaign: every fault detected
//! dss-check model        # exhaustive coherence-protocol model checking
//! dss-check determinism  # source→sink nondeterminism taint over the call graph
//! dss-check locks        # static lock-order graph + dynamic nesting cross-check
//! dss-check all          # everything above
//! ```
//!
//! `alloc` options: `--report PATH` writes the measured budget JSON to
//! `PATH`; `--update` regenerates the committed
//! `crates/check/alloc-budget.json` instead of diffing against it.
//!
//! `lint` options: `--prune` rewrites `crates/check/lint-allow.txt` without
//! its stale entries (which otherwise count as findings), mirroring the
//! alloc ratchet's `--update` UX.
//!
//! `fault` options: `--seed N` replays the campaign's exact corruption
//! schedule under seed `N` (default 1); same seed, same schedule, on any
//! machine. `--site NAME` runs (and gates on) a single site — CI's
//! standalone drill steps use it.
//!
//! `--json` emits one machine-readable document (schema `dss-check/v1`)
//! covering every pass that ran — per-site fault outcomes, lint findings,
//! per-query race summaries, the allocation budget, and the model pass's
//! state/transition counts — so CI archives one artifact instead of
//! scraping stderr. With `--json`, `--report PATH` names that combined
//! document (the allocation budget is embedded as its own section);
//! without `--report` it prints to stdout after the human-readable output.
//!
//! A model-pass violation additionally writes its minimal replayable
//! counterexample to `model-counterexample.txt` in the current directory,
//! for CI to upload on failure.
//!
//! Exits 0 when every requested pass is clean, 1 on any finding, 2 on usage
//! or environment errors. Build with `--features check-invariants` to also
//! arm the simulator's per-transaction observer during the invariants pass.
//!
//! The binary installs a counting `#[global_allocator]` (see [`alloc`]); the
//! library crate stays `#![forbid(unsafe_code)]`, so the allocator lives
//! here, where `unsafe` is denied by default but granted to that one module.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod alloc;

use std::process::ExitCode;

use dss_check::budget::{AllocBudget, Counts, RunBudget};
use dss_check::{
    check_baseline_suite, detect_races, detect_races_source, find_workspace_root, lint_workspace,
    Allowlist, RaceReport,
};
use dss_core::{query_label, Workbench, STUDIED_QUERIES};
use dss_memsim::{Machine, MachineConfig, Protocol, SimStats};

use crate::alloc::{AllocGate, AllocReport, CountingAlloc};

/// Counts every heap operation of the whole binary, so [`AllocGate`] scopes
/// inside the `alloc` pass see exactly what `Machine::run` does.
#[global_allocator]
static COUNTING_ALLOC: CountingAlloc = CountingAlloc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    let all = mode == Some("all");
    let run_lint = all || mode == Some("lint");
    let run_races = all || mode == Some("races");
    let run_invariants = all || mode == Some("invariants");
    let run_alloc = all || mode == Some("alloc");
    let run_fault = all || mode == Some("fault");
    let run_model = all || mode == Some("model");
    let run_determinism = all || mode == Some("determinism");
    let run_locks = all || mode == Some("locks");
    // Deliberately not in `all`: it needs the `repro` binary built and runs
    // whole child sweeps, so CI invokes it as a dedicated step.
    let run_crash = mode == Some("crash");
    if !(run_lint
        || run_races
        || run_invariants
        || run_alloc
        || run_fault
        || run_model
        || run_determinism
        || run_locks
        || run_crash)
    {
        eprintln!(
            "usage: dss-check <lint|races|invariants|alloc|fault|model|determinism|locks|crash|\
             all> [--report PATH] [--update] [--prune] [--seed N] [--site NAME] [--json]"
        );
        return ExitCode::from(2);
    }
    let mut report_path: Option<String> = None;
    let mut update = false;
    let mut prune = false;
    let mut seed = 1u64;
    let mut site: Option<String> = None;
    let mut json = false;
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--report" => match rest.next() {
                Some(p) => report_path = Some(p.clone()),
                None => {
                    eprintln!("--report requires a path");
                    return ExitCode::from(2);
                }
            },
            "--update" => update = true,
            "--prune" => prune = true,
            "--seed" => match rest.next().map(|s| s.parse::<u64>()) {
                Some(Ok(n)) => seed = n,
                _ => {
                    eprintln!("--seed requires an unsigned integer");
                    return ExitCode::from(2);
                }
            },
            "--site" => match rest.next() {
                Some(s) => site = Some(s.clone()),
                None => {
                    eprintln!("--site requires a site name");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            other => {
                eprintln!("unknown option `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    // Each pass reports its findings count plus a JSON fragment for the
    // combined `--json` document.
    let mut findings = 0usize;
    let mut sections: Vec<(&'static str, String)> = Vec::new();
    if run_fault {
        match fault_campaign(seed, site.as_deref()) {
            Ok((n, frag)) => {
                findings += n;
                sections.push(("fault", frag));
            }
            Err(e) => {
                eprintln!("fault: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if run_crash {
        match crash_campaign(seed, site.as_deref()) {
            Ok((n, frag)) => {
                findings += n;
                sections.push(("crash", frag));
            }
            Err(e) => {
                eprintln!("crash: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if run_lint {
        match lint(prune) {
            Ok((n, frag)) => {
                findings += n;
                sections.push(("lint", frag));
            }
            Err(e) => {
                eprintln!("lint: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if run_model {
        let (n, frag) = model();
        findings += n;
        sections.push(("model", frag));
    }
    if run_determinism {
        match determinism() {
            Ok((n, frag)) => {
                findings += n;
                sections.push(("determinism", frag));
            }
            Err(e) => {
                eprintln!("determinism: {e}");
                return ExitCode::from(2);
            }
        }
    }
    // The trace-driven passes share one workbench (the trace cache holds a
    // query's traces across all of them).
    if run_races || run_invariants || run_alloc || run_locks {
        let mut wb = Workbench::paper();
        if run_races {
            let (n, frag) = races(&mut wb);
            findings += n;
            sections.push(("races", frag));
        }
        if run_locks {
            match locks(&mut wb) {
                Ok((n, frag)) => {
                    findings += n;
                    sections.push(("locks", frag));
                }
                Err(e) => {
                    eprintln!("locks: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        if run_invariants {
            let (n, frag) = invariants(&mut wb);
            findings += n;
            sections.push(("invariants", frag));
        }
        if run_alloc {
            // With `--json`, `--report` names the combined document instead
            // of the standalone budget report.
            let budget_report = if json { None } else { report_path.as_deref() };
            match alloc_audit(&mut wb, budget_report, update) {
                Ok((n, frag)) => {
                    findings += n;
                    sections.push(("alloc", frag));
                }
                Err(e) => {
                    eprintln!("alloc: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }
    if json {
        let passes: Vec<String> = sections
            .iter()
            .map(|(name, frag)| format!("\"{name}\": {frag}"))
            .collect();
        let doc = format!(
            "{{\n  \"schema\": \"dss-check/v1\",\n  \"findings\": {findings},\n  \
             \"clean\": {},\n  \"passes\": {{{}}}\n}}\n",
            findings == 0,
            passes.join(", ")
        );
        match report_path.as_deref() {
            Some(path) => {
                if let Err(e) = dss_core::write_atomic(std::path::Path::new(path), doc.as_bytes()) {
                    eprintln!("--report: writing {path}: {e}");
                    return ExitCode::from(2);
                }
                println!("json: report written to {path}");
            }
            None => print!("{doc}"),
        }
    }
    if findings > 0 {
        eprintln!("dss-check: {findings} finding(s)");
        ExitCode::from(1)
    } else {
        println!("dss-check: clean");
        ExitCode::SUCCESS
    }
}

/// Escapes `s` for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Runs the fault-injection campaign: every registered site corrupts its
/// layer's input under a seed-derived schedule, and any fault the layer
/// absorbs (or any site that could not run) is a finding. The static-
/// analysis drill sites from [`dss_check::drill`] join faultkit's table;
/// `only` (from `--site`) restricts the run to one named site.
///
/// # Errors
///
/// An `only` name matching no site is an environment error, not a clean run.
fn fault_campaign(seed: u64, only: Option<&str>) -> Result<(usize, String), String> {
    let mut reports = dss_faultkit::run_campaign_with_extra(seed, dss_check::drill::sites());
    if let Some(name) = only {
        reports.retain(|r| r.site == name);
        if reports.is_empty() {
            return Err(format!("--site {name}: no such fault site"));
        }
    }
    let mut findings = 0usize;
    let mut sites = Vec::new();
    for r in &reports {
        match &r.outcome {
            dss_faultkit::Outcome::Detected { classification } => {
                println!("fault: {}: detected, classified `{classification}`", r.site);
                sites.push(format!(
                    "{{\"site\": \"{}\", \"outcome\": \"detected\", \"classification\": \"{}\"}}",
                    esc(r.site),
                    esc(classification)
                ));
            }
            dss_faultkit::Outcome::Absorbed { detail } => {
                eprintln!("fault: {}: ABSORBED — {detail}", r.site);
                sites.push(format!(
                    "{{\"site\": \"{}\", \"outcome\": \"absorbed\", \"detail\": \"{}\"}}",
                    esc(r.site),
                    esc(detail)
                ));
                findings += 1;
            }
            dss_faultkit::Outcome::Skipped { reason } => {
                eprintln!("fault: {}: skipped — {reason}", r.site);
                sites.push(format!(
                    "{{\"site\": \"{}\", \"outcome\": \"skipped\", \"reason\": \"{}\"}}",
                    esc(r.site),
                    esc(reason)
                ));
                findings += 1;
            }
        }
    }
    println!(
        "fault: {} site(s) injected under seed {seed}, {} finding(s)",
        reports.len(),
        findings
    );
    let frag = format!(
        "{{\"seed\": {seed}, \"findings\": {findings}, \"sites\": [{}]}}",
        sites.join(", ")
    );
    Ok((findings, frag))
}

/// Runs the crash-recovery campaign (`dss-check crash`): kills a child
/// `repro` sweep at each registered crash site at a seed-chosen hit, resumes
/// it, and requires stdout byte-identical to an uninterrupted baseline plus
/// an equal normalized benchmark report. `only` (from `--site`) restricts
/// the run to one site. Work directories of failed sites are kept under the
/// reported path for post-mortem (CI uploads them as artifacts).
///
/// # Errors
///
/// A missing `repro` binary, a failing baseline run, or an unknown `only`
/// site is an environment error; a site that fails to recover is a finding.
fn crash_campaign(seed: u64, only: Option<&str>) -> Result<(usize, String), String> {
    let repro = dss_check::crash::find_repro()?;
    let work = std::env::temp_dir().join(format!("dss-crash-campaign-{}", std::process::id()));
    println!(
        "crash: driving {} under seed {seed} (work dir {})",
        repro.display(),
        work.display()
    );
    let report = dss_check::crash::run_crash_campaign(&repro, &work, seed, only)?;
    let mut sites = Vec::new();
    for o in &report.outcomes {
        if o.recovered {
            println!("crash: {}: recovered — {}", o.site, o.detail);
        } else {
            eprintln!("crash: {}: NOT RECOVERED — {}", o.site, o.detail);
        }
        sites.push(format!(
            "{{\"site\": \"{}\", \"layer\": \"{}\", \"hit\": {}, \"outcome\": \"{}\", \
             \"detail\": \"{}\"}}",
            esc(o.site),
            esc(o.layer),
            o.hit,
            if o.recovered {
                "recovered"
            } else {
                "not-recovered"
            },
            esc(&o.detail)
        ));
    }
    let findings = report.findings();
    println!(
        "crash: {} site(s) killed and resumed under seed {seed}, {} finding(s)",
        report.outcomes.len(),
        findings
    );
    for kept in &report.kept {
        eprintln!("crash: evidence kept at {}", kept.display());
    }
    let frag = format!(
        "{{\"seed\": {seed}, \"findings\": {findings}, \"sites\": [{}]}}",
        sites.join(", ")
    );
    Ok((findings, frag))
}

/// Runs the exhaustive coherence-protocol model pass: the kernel's full
/// reachable state space over {MSI, MESI} × 2–4 processors × 1–2 lines plus
/// the litmus suite. A violation also writes its minimal replayable
/// counterexample to `model-counterexample.txt` for CI to archive.
fn model() -> (usize, String) {
    let report = dss_check::check_model();
    let mut runs = Vec::new();
    for run in &report.runs {
        let status = match (&run.violation, run.complete) {
            (Some(v), _) => format!("VIOLATION: {}", v.rule),
            (None, false) => "INCOMPLETE (state cap hit)".to_string(),
            (None, true) => "exhausted, clean".to_string(),
        };
        println!(
            "model: {} {}p ×{}L: {} states, {} transitions, {status}",
            dss_check::model::protocol_name(run.protocol),
            run.nprocs,
            run.nlines,
            run.states,
            run.transitions
        );
        runs.push(format!(
            "{{\"protocol\": \"{}\", \"procs\": {}, \"lines\": {}, \"states\": {}, \
             \"transitions\": {}, \"complete\": {}, \"violation\": {}}}",
            dss_check::model::protocol_name(run.protocol),
            run.nprocs,
            run.nlines,
            run.states,
            run.transitions,
            run.complete,
            match &run.violation {
                Some(v) => format!("\"{}\"", esc(v.rule)),
                None => "null".to_string(),
            }
        ));
    }
    let mut litmus = Vec::new();
    for l in &report.litmus {
        match &l.failure {
            Some(why) => eprintln!("model: litmus {}: FAILED — {why}", l.name),
            None => println!("model: litmus {}: ok", l.name),
        }
        litmus.push(format!(
            "{{\"name\": \"{}\", \"passed\": {}}}",
            esc(l.name),
            l.failure.is_none()
        ));
    }
    if let Some(run) = report.first_violation() {
        let text = dss_check::render_counterexample(run);
        eprint!("model: counterexample:\n{text}");
        let path = std::path::Path::new("model-counterexample.txt");
        match dss_core::write_atomic(path, text.as_bytes()) {
            Ok(()) => eprintln!("model: counterexample written to {}", path.display()),
            Err(e) => eprintln!("model: writing {}: {e}", path.display()),
        }
    }
    let findings = report.findings();
    println!(
        "model: {} exploration(s), {} litmus test(s), {} finding(s)",
        report.runs.len(),
        report.litmus.len(),
        findings
    );
    let frag = format!(
        "{{\"findings\": {findings}, \"explorations\": [{}], \"litmus\": [{}]}}",
        runs.join(", "),
        litmus.join(", ")
    );
    (findings, frag)
}

/// Runs the determinism taint pass: nondeterminism sources reachable from a
/// byte-diffable sink through the workspace call graph are findings, less
/// the committed `determinism-allow.txt` ratchet (whose stale entries are
/// findings too).
///
/// # Errors
///
/// Environment errors (unlocatable workspace root, unreadable sources).
fn determinism() -> std::io::Result<(usize, String)> {
    let cwd = std::env::current_dir()?;
    let root = find_workspace_root(&cwd)?;
    let (report, _allow) = dss_check::check_determinism(&root)?;
    let mut items = Vec::new();
    for f in &report.findings {
        eprintln!("determinism: {f}");
        items.push(format!(
            "{{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"what\": \"{}\", \
             \"chain\": \"{}\"}}",
            esc(&f.file.display().to_string()),
            f.line,
            esc(f.rule),
            esc(&f.what),
            esc(&f.chain)
        ));
    }
    for entry in &report.stale {
        eprintln!("determinism: stale allowlist entry `{entry}` no longer matches anything");
    }
    println!(
        "determinism: {} fn(s), {} sink root(s), {} source site(s) seen, \
         {} finding(s), {} stale allowlist entr(ies)",
        report.fns,
        report.sink_roots,
        report.sources_seen,
        report.findings.len(),
        report.stale.len()
    );
    let stale_json: Vec<String> = report
        .stale
        .iter()
        .map(|s| format!("\"{}\"", esc(s)))
        .collect();
    let frag = format!(
        "{{\"fns\": {}, \"sink_roots\": {}, \"sources_seen\": {}, \"findings\": [{}], \
         \"stale_allowlist\": [{}]}}",
        report.fns,
        report.sink_roots,
        report.sources_seen,
        items.join(", "),
        stale_json.join(", ")
    );
    Ok((report.findings.len() + report.stale.len(), frag))
}

/// Runs the lock-order pass: the static acquisition graph must be acyclic,
/// and every nesting pair the Q3/Q6/Q12 replays perform must be derivable
/// from it (else the extractor is blind to an acquisition site).
///
/// # Errors
///
/// Environment errors (unlocatable workspace root, unreadable sources).
fn locks(wb: &mut Workbench) -> std::io::Result<(usize, String)> {
    let cwd = std::env::current_dir()?;
    let root = find_workspace_root(&cwd)?;
    let mut report = dss_check::check_locks(&root)?;
    let mut dynamic = std::collections::BTreeSet::new();
    for query in STUDIED_QUERIES {
        let traces = wb.traces(query, 0);
        dynamic.extend(dss_check::locks::dynamic_nesting(&traces));
    }
    dss_check::locks::cross_check(&mut report, &dynamic);
    let mut items = Vec::new();
    for f in &report.findings {
        eprintln!("locks: {f}");
        items.push(format!(
            "{{\"rule\": \"{}\", \"detail\": \"{}\"}}",
            esc(f.rule),
            esc(&f.detail)
        ));
    }
    let edges: Vec<String> = report
        .edges
        .iter()
        .map(|e| {
            format!(
                "{{\"held\": \"{}\", \"acquired\": \"{}\", \"at\": \"{}:{}\", \"in\": \"{}\"}}",
                esc(&e.held),
                esc(&e.acquired),
                esc(&e.file.display().to_string()),
                e.line,
                esc(&e.in_fn)
            )
        })
        .collect();
    println!(
        "locks: {} lock(s), {} fn(s) acquiring, {} order edge(s), {} dynamic \
         pair(s) cross-checked, {} finding(s)",
        report.locks.len(),
        report.fns_with_locks,
        report.edges.len(),
        report.dynamic_pairs,
        report.findings.len()
    );
    let frag = format!(
        "{{\"locks\": {}, \"fns_with_locks\": {}, \"dynamic_pairs\": {}, \"edges\": [{}], \
         \"findings\": [{}]}}",
        report.locks.len(),
        report.fns_with_locks,
        report.dynamic_pairs,
        edges.join(", "),
        items.join(", ")
    );
    Ok((report.findings.len(), frag))
}

/// Runs the workspace lint; returns the number of findings. With `prune`,
/// stale `lint-allow.txt` entries are removed from the committed file
/// instead of counting as findings.
fn lint(prune: bool) -> std::io::Result<(usize, String)> {
    let cwd = std::env::current_dir()?;
    let root = find_workspace_root(&cwd)?;
    let mut allow = Allowlist::load(&root)?;
    let findings = lint_workspace(&root, &mut allow)?;
    let mut items = Vec::new();
    for f in &findings {
        eprintln!("lint: {f}");
        items.push(format!(
            "{{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            esc(&f.file.display().to_string()),
            f.line,
            esc(f.rule),
            esc(&f.message)
        ));
    }
    let stale = allow.unused();
    let mut pruned = false;
    if prune && !stale.is_empty() {
        let path = root.join("crates/check/lint-allow.txt");
        let text = std::fs::read_to_string(&path)?;
        let kept = dss_check::lint::prune_allowlist_text(&text, &stale);
        dss_core::write_atomic(&path, kept.as_bytes())?;
        println!(
            "lint: pruned {} stale entr(ies) from {}",
            stale.len(),
            path.display()
        );
        pruned = true;
    } else {
        for entry in &stale {
            eprintln!("lint: stale allowlist entry `{entry}` no longer matches anything");
        }
    }
    println!(
        "lint: {} finding(s), {} stale allowlist entr(ies)",
        findings.len(),
        stale.len()
    );
    let stale_json: Vec<String> = stale.iter().map(|s| format!("\"{}\"", esc(s))).collect();
    let frag = format!(
        "{{\"findings\": [{}], \"stale_allowlist\": [{}], \"pruned\": {pruned}}}",
        items.join(", "),
        stale_json.join(", ")
    );
    let stale_findings = if pruned { 0 } else { stale.len() };
    Ok((findings.len() + stale_findings, frag))
}

/// Runs the race detector over the studied queries; returns findings.
///
/// Each query is analyzed twice: eagerly over the materialized traces, and
/// with the streaming detector over block files written from the same events.
/// The two reports must agree exactly — a divergence means the block codec or
/// the streamed replay changed the analyzed workload, and is a finding.
fn races(wb: &mut Workbench) -> (usize, String) {
    let mut findings = 0;
    let mut queries = Vec::new();
    let dir = std::env::temp_dir().join(format!("dss-check-races-{}", std::process::id()));
    for query in STUDIED_QUERIES {
        let traces = wb.traces(query, 0);
        match detect_races(&traces) {
            Ok(report) => {
                for race in &report.races {
                    eprintln!("races: {}: {race}", query_label(query));
                }
                let agreement = match streamed_report(&traces, &dir, query) {
                    Ok(streamed) if streamed == report => "streamed replay agrees",
                    Ok(_) => {
                        eprintln!(
                            "races: {}: streamed replay DIVERGED from the materialized analysis",
                            query_label(query)
                        );
                        findings += 1;
                        "streamed replay DIVERGED"
                    }
                    Err(e) => {
                        eprintln!("races: {}: streamed replay failed: {e}", query_label(query));
                        findings += 1;
                        "streamed replay failed"
                    }
                };
                println!(
                    "races: {}: {} race(s) over {} shared accesses in {} classes ({agreement})",
                    query_label(query),
                    report.races.len(),
                    report.total_checked(),
                    report.checked.len()
                );
                findings += report.races.len();
                queries.push(format!(
                    "{{\"query\": \"{}\", \"races\": {}, \"checked\": {}, \"classes\": {}, \
                     \"streamed\": \"{}\"}}",
                    esc(&query_label(query)),
                    report.races.len(),
                    report.total_checked(),
                    report.checked.len(),
                    esc(agreement)
                ));
            }
            Err(e) => {
                eprintln!("races: {}: traces not analyzable: {e}", query_label(query));
                findings += 1;
                queries.push(format!(
                    "{{\"query\": \"{}\", \"error\": \"{}\"}}",
                    esc(&query_label(query)),
                    esc(&e.to_string())
                ));
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    let frag = format!(
        "{{\"findings\": {findings}, \"queries\": [{}]}}",
        queries.join(", ")
    );
    (findings, frag)
}

/// Writes `traces` as block files under `dir` and re-runs the analysis with
/// the streaming detector.
fn streamed_report(
    traces: &[dss_trace::Trace],
    dir: &std::path::Path,
    query: u8,
) -> Result<RaceReport, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let stem = format!("q{query}");
    let paths = traces
        .iter()
        .map(|t| {
            let path = dss_trace::FileTraceSource::proc_path(dir, &stem, t.proc_id);
            let file = std::fs::File::create(&path)
                .map_err(|e| format!("creating {}: {e}", path.display()))?;
            let mut w = std::io::BufWriter::new(file);
            dss_trace::write_trace_blocks(t, &mut w, dss_trace::DEFAULT_BLOCK_EVENTS)
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            Ok(path)
        })
        .collect::<Result<Vec<_>, String>>()?;
    detect_races_source(&dss_trace::FileTraceSource::new(paths)).map_err(|e| e.to_string())
}

/// Runs the coherence invariant suite; returns findings.
fn invariants(wb: &mut Workbench) -> (usize, String) {
    let observer = if cfg!(feature = "check-invariants") {
        "per-transaction observer armed"
    } else {
        "post-run sweep only"
    };
    match check_baseline_suite(wb) {
        Ok(summaries) => {
            println!(
                "invariants: {} run(s) verified ({observer})",
                summaries.len()
            );
            let frag = format!(
                "{{\"runs\": {}, \"observer\": \"{}\", \"failure\": null}}",
                summaries.len(),
                esc(observer)
            );
            (0, frag)
        }
        Err(failure) => {
            eprintln!("invariants: {failure}");
            let frag = format!(
                "{{\"observer\": \"{}\", \"failure\": \"{}\"}}",
                esc(observer),
                esc(&failure.to_string())
            );
            (1, frag)
        }
    }
}

fn to_counts(r: AllocReport) -> Counts {
    Counts {
        allocs: r.allocs,
        deallocs: r.deallocs,
        reallocs: r.reallocs,
        bytes_allocated: r.bytes_allocated,
        peak_bytes: r.peak_bytes,
    }
}

/// Measures the baseline suite under the counting allocator: for each run a
/// warm-up phase (machine construction + first simulation, where buffers
/// grow) and a steady-state phase (identical second simulation on the warmed
/// machine, which must be heap-silent). The measurement itself must stay
/// single-threaded — the counters are process-global — so everything that
/// parallelizes (trace generation) happens before the first gate opens.
pub fn measure_suite(wb: &mut Workbench) -> AllocBudget {
    let configs: [(&str, MachineConfig); 2] = [
        ("MSI baseline", MachineConfig::baseline()),
        (
            "MESI",
            MachineConfig::baseline().with_protocol(Protocol::Mesi),
        ),
    ];
    let mut measured = AllocBudget::default();
    for query in STUDIED_QUERIES {
        let traces = wb.traces(query, 0);
        for (name, config) in &configs {
            let run = format!("{} / {name}", query_label(query));
            let mut stats = SimStats::default();

            let gate = AllocGate::begin();
            let mut machine = Machine::new(config.clone());
            machine.run_into(&traces, &mut stats);
            let warmup = gate.end();

            let gate = AllocGate::begin();
            machine.run_into(&traces, &mut stats);
            let steady = gate.end();

            measured.runs.push(RunBudget {
                run,
                warmup: to_counts(warmup),
                steady: to_counts(steady),
            });
        }
    }
    measured
}

/// The allocation audit pass; returns the number of findings.
///
/// # Errors
///
/// Environment errors (unlocatable workspace root, unwritable report paths,
/// unparsable committed budget); measurement findings are counted, not
/// errors.
fn alloc_audit(
    wb: &mut Workbench,
    report_path: Option<&str>,
    update: bool,
) -> Result<(usize, String), String> {
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = find_workspace_root(&cwd).map_err(|e| e.to_string())?;
    let budget_path = root.join("crates/check/alloc-budget.json");

    let measured = measure_suite(wb);
    for r in &measured.runs {
        println!(
            "alloc: {}: warm-up {}; steady {}",
            r.run, r.warmup, r.steady
        );
    }
    let json = measured.to_json();
    if let Some(path) = report_path {
        dss_core::write_atomic(std::path::Path::new(path), json.as_bytes())
            .map_err(|e| format!("writing report: {e}"))?;
    }

    let mut problems: Vec<String> = Vec::new();
    if update {
        dss_core::write_atomic(&budget_path, json.as_bytes())
            .map_err(|e| format!("writing budget: {e}"))?;
        println!("alloc: budget written to {}", budget_path.display());
        // Even a freshly written budget must uphold the invariant the audit
        // exists for: a warmed Machine::run never touches the heap.
        for r in &measured.runs {
            if !r.steady.is_heap_silent() {
                problems.push(format!(
                    "{}: steady-state heap activity ({}) — Machine::run must not allocate once warmed",
                    r.run, r.steady
                ));
            }
        }
    } else {
        match std::fs::read_to_string(&budget_path) {
            Ok(text) => {
                let committed = AllocBudget::parse(&text)
                    .map_err(|e| format!("{}: {e}", budget_path.display()))?;
                problems = committed.diff(&measured);
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                problems.push(format!(
                    "no committed budget at {} — run `dss-check alloc --update` and commit it",
                    budget_path.display()
                ));
                for r in &measured.runs {
                    if !r.steady.is_heap_silent() {
                        problems.push(format!(
                            "{}: steady-state heap activity ({})",
                            r.run, r.steady
                        ));
                    }
                }
            }
            Err(e) => return Err(format!("reading {}: {e}", budget_path.display())),
        }
    }
    for p in &problems {
        eprintln!("alloc: {p}");
    }
    println!(
        "alloc: {} run(s) audited, {} problem(s)",
        measured.runs.len(),
        problems.len()
    );
    let problem_json: Vec<String> = problems.iter().map(|p| format!("\"{}\"", esc(p))).collect();
    // The measured budget is itself JSON; embed it verbatim as a section.
    let frag = format!(
        "{{\"updated\": {update}, \"problems\": [{}], \"budget\": {}}}",
        problem_json.join(", "),
        json.trim_end()
    );
    Ok((problems.len(), frag))
}
