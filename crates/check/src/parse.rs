//! A lightweight syntactic Rust parser on top of [`crate::lexer`].
//!
//! The determinism and lock-order passes need more structure than the lint's
//! token-sequence matching: *which function* a token belongs to, what that
//! function calls, and what its typed bindings are. This parser recovers
//! exactly that — items, fn signatures, struct fields, paths, call and
//! method-call expressions, macro uses, and `cfg` guards — with **no full
//! expression grammar**. Expressions stay token soup; only the shapes the
//! passes consume are lifted out.
//!
//! Design rules, in priority order:
//!
//! 1. **Never panic.** Malformed input produces a structured [`ParseError`]
//!    (unclosed delimiter, nesting past the bound) or simply fewer recognized
//!    items — the same degrade-to-noise contract as the lexer. The fuzz suite
//!    (`tests/parse_fuzz.rs`) holds the parser to this on arbitrary token
//!    soup and on mutated real workspace files.
//! 2. **Over-approximate calls.** A tuple-struct constructor looks like a
//!    call and is recorded as one; a same-named method on two types resolves
//!    to both. Extra call-graph edges can only create false findings, which
//!    the allowlist ratchet absorbs; missing edges would hide real ones.
//! 3. **Skip what we don't model.** `enum` bodies, trait bounds, expression
//!    grouping — all skipped with balanced-delimiter scans. The known
//!    blind spots are documented in DESIGN.md §5i.

use std::fmt;
use std::ops::Range;

use crate::lexer::{lex, Token, TokenKind};

/// Item nesting deeper than this is rejected rather than recursed into, so
/// adversarial input (`mod a { mod b { …`) cannot overflow the stack.
const MAX_DEPTH: usize = 64;

/// Keywords that can precede `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "else", "let", "fn",
    "impl", "dyn", "where", "mut", "ref", "box", "await", "unsafe", "use", "pub", "crate",
];

/// A structured parse failure. The parser never panics; inputs it cannot
/// follow produce one of these instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The input ended inside an unclosed delimiter or item.
    UnexpectedEof {
        /// What was being parsed when the input ran out.
        context: &'static str,
        /// Line where the unterminated construct opened.
        line: usize,
    },
    /// Item nesting exceeded [`MAX_DEPTH`].
    TooDeep {
        /// Line of the item that crossed the bound.
        line: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedEof { context, line } => {
                write!(f, "line {line}: input ended inside {context}")
            }
            ParseError::TooDeep { line } => {
                write!(f, "line {line}: item nesting exceeds {MAX_DEPTH} levels")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// What kind of call a [`Call`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// A path call: `foo(…)`, `a::b::foo(…)`, `Type::new(…)`.
    Path,
    /// A method call: `recv.foo(…)` (receiver not resolved here).
    Method,
    /// A macro use: `foo!(…)`, `a::foo![…]`.
    Macro,
}

/// One call, method call, or macro use inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Call {
    /// The call's kind.
    pub kind: CallKind,
    /// Path segments; a method or bare call has one segment.
    pub path: Vec<String>,
    /// 1-based source line of the callee name.
    pub line: usize,
}

impl Call {
    /// The callee's final path segment (its bare name).
    pub fn name(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or("")
    }
}

/// A typed binding visible inside a function: a `let` with an explicit type
/// ascription, or a typed parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Binding {
    /// The bound name.
    pub name: String,
    /// The ascribed type, as space-joined token text.
    pub ty: String,
    /// 1-based source line of the binding.
    pub line: usize,
}

/// One parsed function (free fn, inherent/trait method, or default body).
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Module-qualified path (`pipeline::ChunkSequencer::release`).
    pub qpath: String,
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token-index range of the body, exclusive of its braces. Empty for
    /// bodyless trait declarations.
    pub body: Range<usize>,
    /// Inside a `#[cfg(test)]` item (directly or via an enclosing module).
    pub cfg_test: bool,
    /// Innermost `#[cfg(feature = "…")]` guard covering this fn, if any.
    pub cfg_feature: Option<String>,
    /// Calls, method calls, and macro uses in the body, in token order.
    pub calls: Vec<Call>,
    /// Typed parameters and explicitly ascribed `let` bindings.
    pub bindings: Vec<Binding>,
}

/// One named struct field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldDef {
    /// The struct's name.
    pub owner: String,
    /// The field name.
    pub name: String,
    /// The field's type, as space-joined token text.
    pub ty: String,
    /// 1-based source line of the field name.
    pub line: usize,
}

/// The parsed view of one source file.
#[derive(Clone, Debug)]
pub struct ParsedFile<'a> {
    /// Comment-stripped tokens; [`FnDef::body`] ranges index into this.
    pub toks: Vec<Token<'a>>,
    /// Every recognized function, in source order.
    pub fns: Vec<FnDef>,
    /// Every recognized named struct field, in source order.
    pub fields: Vec<FieldDef>,
}

/// Parses one file. Unrecognized constructs are skipped, not errors; only
/// truncation (unclosed delimiters) and pathological nesting fail.
///
/// # Errors
///
/// Returns [`ParseError`] on input the parser cannot bound — it never
/// panics, matching the codec/SQL fuzz discipline.
pub fn parse_file(text: &str) -> Result<ParsedFile<'_>, ParseError> {
    let toks: Vec<Token<'_>> = lex(text).into_iter().filter(|t| !t.is_comment()).collect();
    let mut p = Parser {
        toks: &toks,
        pos: 0,
        fns: Vec::new(),
        fields: Vec::new(),
        mods: Vec::new(),
        self_ty: None,
    };
    p.items(0, false, &Cfg::default())?;
    Ok(ParsedFile {
        fns: p.fns,
        fields: p.fields,
        toks,
    })
}

/// Inherited `cfg` context for an item: test-gated, and/or feature-gated.
#[derive(Clone, Debug, Default)]
struct Cfg {
    test: bool,
    feature: Option<String>,
}

struct Parser<'t, 'a> {
    toks: &'t [Token<'a>],
    pos: usize,
    fns: Vec<FnDef>,
    fields: Vec<FieldDef>,
    mods: Vec<String>,
    self_ty: Option<String>,
}

impl<'t, 'a> Parser<'t, 'a> {
    fn peek(&self, ahead: usize) -> Option<&Token<'a>> {
        self.toks.get(self.pos + ahead)
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek(0).is_some_and(|t| t.is_punct(c))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek(0).is_some_and(|t| t.is_ident(s))
    }

    /// Line of the current token (or the last token at EOF).
    fn line(&self) -> usize {
        self.peek(0)
            .or(self.toks.last())
            .map(|t| t.line)
            .unwrap_or(1)
    }

    /// Parses items until EOF (`in_braces` false) or a closing `}`.
    fn items(&mut self, depth: usize, in_braces: bool, ctx: &Cfg) -> Result<(), ParseError> {
        loop {
            if self.pos >= self.toks.len() {
                return if in_braces {
                    Err(ParseError::UnexpectedEof {
                        context: "an item block",
                        line: self.line(),
                    })
                } else {
                    Ok(())
                };
            }
            if in_braces && self.at_punct('}') {
                self.pos += 1;
                return Ok(());
            }
            self.item(depth, ctx)?;
        }
    }

    /// Parses (or skips) one item; always advances.
    fn item(&mut self, depth: usize, ctx: &Cfg) -> Result<(), ParseError> {
        if depth > MAX_DEPTH {
            return Err(ParseError::TooDeep { line: self.line() });
        }
        let mut cfg = ctx.clone();
        // Attributes (outer `#[…]` and inner `#![…]`), folding cfg guards
        // into the item's context.
        while self.at_punct('#') {
            if let Some(attr_cfg) = self.cfg_of_attr() {
                cfg.test |= attr_cfg.test;
                if attr_cfg.feature.is_some() {
                    cfg.feature = attr_cfg.feature;
                }
            }
            self.skip_attr()?;
        }
        // Visibility and fn qualifiers.
        loop {
            if self.at_ident("pub") {
                self.pos += 1;
                if self.at_punct('(') {
                    self.skip_balanced('(', ')', "a visibility scope")?;
                }
            } else if self.at_ident("unsafe")
                || self.at_ident("async")
                || self.at_ident("default")
                || (self.at_ident("const")
                    && self.peek(1).is_some_and(|t| {
                        t.is_ident("fn") || t.is_ident("unsafe") || t.is_ident("async")
                    }))
            {
                self.pos += 1;
            } else if self.at_ident("extern")
                && self.peek(1).is_some_and(|t| t.kind == TokenKind::Str)
                && self.peek(2).is_some_and(|t| t.is_ident("fn"))
            {
                self.pos += 2;
            } else {
                break;
            }
        }
        match self.peek(0) {
            Some(t) if t.is_ident("mod") => self.mod_item(depth, &cfg),
            Some(t) if t.is_ident("impl") => self.impl_item(depth, &cfg, false),
            Some(t) if t.is_ident("trait") => self.impl_item(depth, &cfg, true),
            Some(t) if t.is_ident("fn") => self.fn_item(&cfg),
            Some(t) if t.is_ident("struct") => self.struct_item(),
            Some(t) if t.is_ident("enum") || t.is_ident("union") => self.skip_type_item(),
            Some(t) if t.is_ident("macro_rules") => self.skip_macro_def(),
            Some(t)
                if t.is_ident("use")
                    || t.is_ident("type")
                    || t.is_ident("static")
                    || t.is_ident("const") =>
            {
                self.skip_to_semi();
                Ok(())
            }
            _ => {
                self.skip_fragment();
                Ok(())
            }
        }
    }

    /// Recognizes `#[cfg(test)]` / `#![cfg(test)]` / `#[cfg(feature = "…")]`
    /// at the current `#` without consuming anything.
    fn cfg_of_attr(&self) -> Option<Cfg> {
        let base = if self.peek(1).is_some_and(|t| t.is_punct('!')) {
            2
        } else {
            1
        };
        let p = |j: usize, c: char| self.peek(base + j).is_some_and(|t| t.is_punct(c));
        let id = |j: usize, s: &str| self.peek(base + j).is_some_and(|t| t.is_ident(s));
        if !(p(0, '[') && id(1, "cfg") && p(2, '(')) {
            return None;
        }
        if id(3, "test") && p(4, ')') {
            return Some(Cfg {
                test: true,
                feature: None,
            });
        }
        if id(3, "feature") && p(4, '=') {
            let t = self.peek(base + 5)?;
            if t.kind == TokenKind::Str && p(6, ')') {
                return Some(Cfg {
                    test: false,
                    feature: Some(t.text.trim_matches('"').to_string()),
                });
            }
        }
        None
    }

    /// Skips an attribute from its `#` past the matching `]`.
    fn skip_attr(&mut self) -> Result<(), ParseError> {
        self.pos += 1; // '#'
        if self.at_punct('!') {
            self.pos += 1;
        }
        if self.at_punct('[') {
            self.skip_balanced('[', ']', "an attribute")
        } else {
            Ok(()) // stray '#': tolerate
        }
    }

    /// Skips from an opening delimiter past its balanced close.
    fn skip_balanced(
        &mut self,
        open: char,
        close: char,
        context: &'static str,
    ) -> Result<(), ParseError> {
        let line = self.line();
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.pos += 1;
                    return Ok(());
                }
            }
            self.pos += 1;
        }
        Err(ParseError::UnexpectedEof { context, line })
    }

    /// Skips a generic argument list from its `<`. `>` preceded by `-` (the
    /// arrow of an `Fn() -> T` bound) does not close a level.
    fn skip_angles(&mut self) -> Result<(), ParseError> {
        let line = self.line();
        let mut depth = 0i64;
        let mut prev_minus = false;
        while let Some(t) = self.peek(0) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !prev_minus {
                depth -= 1;
                if depth == 0 {
                    self.pos += 1;
                    return Ok(());
                }
            }
            prev_minus = t.is_punct('-');
            self.pos += 1;
        }
        Err(ParseError::UnexpectedEof {
            context: "a generic argument list",
            line,
        })
    }

    /// Skips to just past the next `;` outside any nesting; consumes a
    /// balanced brace block instead if one opens first (`static X: … = { … };`
    /// keeps the `;`, `extern { … }` has none).
    fn skip_to_semi(&mut self) {
        let mut depth = 0i64;
        while let Some(t) = self.peek(0) {
            match t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth <= 0 {
                        self.pos += 1;
                        if self.at_punct(';') {
                            self.pos += 1;
                        }
                        return;
                    }
                }
                TokenKind::Punct(';') if depth == 0 => {
                    self.pos += 1;
                    return;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Last-resort skip for unrecognized constructs; consumes at least one
    /// token so the item loop always makes progress.
    fn skip_fragment(&mut self) {
        if self.at_punct('{') {
            // A stray block: consume it balanced if possible.
            if self.skip_balanced('{', '}', "a block").is_err() {
                self.pos = self.toks.len();
            }
        } else {
            self.pos += 1;
        }
    }

    fn mod_item(&mut self, depth: usize, cfg: &Cfg) -> Result<(), ParseError> {
        self.pos += 1; // "mod"
        let name = match self.peek(0) {
            Some(t) if t.kind == TokenKind::Ident => {
                let n = t.text.to_string();
                self.pos += 1;
                n
            }
            _ => {
                self.skip_fragment();
                return Ok(());
            }
        };
        if self.at_punct('{') {
            self.pos += 1;
            self.mods.push(name);
            let saved_self_ty = self.self_ty.take();
            let result = self.items(depth + 1, true, cfg);
            self.self_ty = saved_self_ty;
            self.mods.pop();
            result
        } else {
            self.skip_to_semi(); // `mod name;`
            Ok(())
        }
    }

    /// Parses an `impl`/`trait` header, extracts the self-type name, then
    /// parses the brace body as items. The self type is the last ident at
    /// angle-depth 0 in the header (after the last top-level `for` when one
    /// is present, stopping at `where`) — which resolves `impl Foo`,
    /// `impl<T> Foo<T>`, `impl Trait for a::b::Foo`, and `impl X for &mut Y`
    /// alike to the bare type name.
    fn impl_item(&mut self, depth: usize, cfg: &Cfg, is_trait: bool) -> Result<(), ParseError> {
        self.pos += 1; // "impl" / "trait"
        let mut angle = 0i64;
        let mut prev_minus = false;
        let mut name: Option<String> = None;
        let mut in_where = false;
        while let Some(t) = self.peek(0) {
            match t.kind {
                TokenKind::Punct('{') if angle <= 0 => break,
                TokenKind::Punct(';') if angle <= 0 => {
                    self.pos += 1; // bodyless (`impl Foo;` is not Rust; bail)
                    return Ok(());
                }
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') if !prev_minus => angle -= 1,
                TokenKind::Ident if angle <= 0 && !in_where => match t.text {
                    "for" => name = None,
                    "where" => in_where = true,
                    "dyn" | "mut" | "const" | "unsafe" | "async" => {}
                    other => name = Some(other.to_string()),
                },
                _ => {}
            }
            prev_minus = t.is_punct('-');
            self.pos += 1;
        }
        if !self.at_punct('{') {
            return Err(ParseError::UnexpectedEof {
                context: if is_trait {
                    "a trait header"
                } else {
                    "an impl header"
                },
                line: self.line(),
            });
        }
        self.pos += 1;
        let saved = self.self_ty.take();
        self.self_ty = name;
        let result = self.items(depth + 1, true, cfg);
        self.self_ty = saved;
        result
    }

    fn struct_item(&mut self) -> Result<(), ParseError> {
        self.pos += 1; // "struct"
        let owner = match self.peek(0) {
            Some(t) if t.kind == TokenKind::Ident => {
                let n = t.text.to_string();
                self.pos += 1;
                n
            }
            _ => {
                self.skip_fragment();
                return Ok(());
            }
        };
        if self.at_punct('<') {
            self.skip_angles()?;
        }
        // `where` clause before the body.
        while self
            .peek(0)
            .is_some_and(|t| !t.is_punct('{') && !t.is_punct('(') && !t.is_punct(';'))
        {
            if self.at_punct('<') {
                self.skip_angles()?;
            } else {
                self.pos += 1;
            }
        }
        match self.peek(0) {
            Some(t) if t.is_punct('{') => {
                self.pos += 1;
                self.struct_fields(&owner)
            }
            Some(t) if t.is_punct('(') => {
                // Tuple struct: fields are unnamed, nothing to record.
                self.skip_balanced('(', ')', "a tuple struct")?;
                self.skip_to_semi();
                Ok(())
            }
            Some(t) if t.is_punct(';') => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(ParseError::UnexpectedEof {
                context: "a struct declaration",
                line: self.line(),
            }),
        }
    }

    /// Parses `name: Type,` fields until the closing `}`.
    fn struct_fields(&mut self, owner: &str) -> Result<(), ParseError> {
        loop {
            while self.at_punct('#') {
                self.skip_attr()?;
            }
            match self.peek(0) {
                None => {
                    return Err(ParseError::UnexpectedEof {
                        context: "a struct body",
                        line: self.line(),
                    })
                }
                Some(t) if t.is_punct('}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => {}
            }
            if self.at_ident("pub") {
                self.pos += 1;
                if self.at_punct('(') {
                    self.skip_balanced('(', ')', "a visibility scope")?;
                }
            }
            let named = matches!(
                (self.peek(0), self.peek(1)),
                (Some(n), Some(c)) if n.kind == TokenKind::Ident && c.is_punct(':')
                    && !self.peek(2).is_some_and(|t| t.is_punct(':'))
            );
            if named {
                let (name, line) = match self.peek(0) {
                    Some(t) => (t.text.to_string(), t.line),
                    None => continue,
                };
                self.pos += 2; // name ':'
                let ty = self.field_type()?;
                self.fields.push(FieldDef {
                    owner: owner.to_string(),
                    name,
                    ty,
                    line,
                });
            } else {
                // Not a field shape we model: skip to the next separator.
                self.field_type()?;
            }
            if self.at_punct(',') {
                self.pos += 1;
            }
        }
    }

    /// Collects type tokens until a top-level `,` or the struct's `}`.
    fn field_type(&mut self) -> Result<String, ParseError> {
        let line = self.line();
        let mut parts: Vec<&str> = Vec::new();
        let mut depth = 0i64;
        let mut angle = 0i64;
        let mut prev_minus = false;
        while let Some(t) = self.peek(0) {
            match t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}')
                    if depth > 0 =>
                {
                    depth -= 1
                }
                TokenKind::Punct('}') => return Ok(parts.join(" ")), // struct's close
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') if !prev_minus => angle -= 1,
                TokenKind::Punct(',') if depth == 0 && angle <= 0 => return Ok(parts.join(" ")),
                _ => {}
            }
            parts.push(t.text);
            prev_minus = t.is_punct('-');
            self.pos += 1;
        }
        Err(ParseError::UnexpectedEof {
            context: "a field type",
            line,
        })
    }

    /// Skips an `enum`/`union` (body recorded nowhere — variants carry no
    /// state the passes track).
    fn skip_type_item(&mut self) -> Result<(), ParseError> {
        self.pos += 1;
        while self
            .peek(0)
            .is_some_and(|t| !t.is_punct('{') && !t.is_punct(';'))
        {
            if self.at_punct('<') {
                self.skip_angles()?;
            } else {
                self.pos += 1;
            }
        }
        if self.at_punct('{') {
            self.skip_balanced('{', '}', "an enum body")
        } else {
            self.skip_to_semi();
            Ok(())
        }
    }

    /// Skips `macro_rules! name { … }`.
    fn skip_macro_def(&mut self) -> Result<(), ParseError> {
        self.pos += 1; // macro_rules
        if self.at_punct('!') {
            self.pos += 1;
        }
        if self.peek(0).is_some_and(|t| t.kind == TokenKind::Ident) {
            self.pos += 1;
        }
        match self.peek(0) {
            Some(t) if t.is_punct('{') => self.skip_balanced('{', '}', "a macro definition"),
            Some(t) if t.is_punct('(') => {
                self.skip_balanced('(', ')', "a macro definition")?;
                self.skip_to_semi();
                Ok(())
            }
            _ => {
                self.skip_fragment();
                Ok(())
            }
        }
    }

    fn fn_item(&mut self, cfg: &Cfg) -> Result<(), ParseError> {
        let line = self.line();
        self.pos += 1; // "fn"
        let name = match self.peek(0) {
            Some(t) if t.kind == TokenKind::Ident => {
                let n = t.text.to_string();
                self.pos += 1;
                n
            }
            _ => {
                self.skip_fragment();
                return Ok(());
            }
        };
        if self.at_punct('<') {
            self.skip_angles()?;
        }
        let mut bindings = Vec::new();
        if self.at_punct('(') {
            bindings = self.params()?;
        }
        // Return type and `where` clause: scan to the body `{` or a
        // declaration-terminating `;` at top level.
        let mut angle = 0i64;
        let mut prev_minus = false;
        loop {
            match self.peek(0) {
                None => {
                    return Err(ParseError::UnexpectedEof {
                        context: "a fn signature",
                        line,
                    })
                }
                Some(t) if t.is_punct('{') && angle <= 0 => break,
                Some(t) if t.is_punct(';') && angle <= 0 => {
                    self.pos += 1;
                    self.push_fn(name, line, 0..0, cfg, Vec::new(), bindings);
                    return Ok(());
                }
                Some(t) => {
                    if t.is_punct('<') {
                        angle += 1;
                    } else if t.is_punct('>') && !prev_minus {
                        angle -= 1;
                    }
                    prev_minus = t.is_punct('-');
                    self.pos += 1;
                }
            }
        }
        let body_start = self.pos + 1;
        self.skip_balanced('{', '}', "a fn body")?;
        let body = body_start..self.pos - 1;
        let (calls, lets) = scan_body(self.toks, body.clone());
        bindings.extend(lets);
        self.push_fn(name, line, body, cfg, calls, bindings);
        Ok(())
    }

    fn push_fn(
        &mut self,
        name: String,
        line: usize,
        body: Range<usize>,
        cfg: &Cfg,
        calls: Vec<Call>,
        bindings: Vec<Binding>,
    ) {
        let mut parts: Vec<&str> = self.mods.iter().map(String::as_str).collect();
        if let Some(ty) = &self.self_ty {
            parts.push(ty);
        }
        parts.push(&name);
        self.fns.push(FnDef {
            qpath: parts.join("::"),
            name,
            self_ty: self.self_ty.clone(),
            line,
            body,
            cfg_test: cfg.test,
            cfg_feature: cfg.feature.clone(),
            calls,
            bindings,
        });
    }

    /// Parses a parameter list from its `(`, extracting `name: Type` pairs.
    fn params(&mut self) -> Result<Vec<Binding>, ParseError> {
        let open_line = self.line();
        self.pos += 1; // '('
        let start = self.pos;
        let mut depth = 1i64;
        while let Some(t) = self.peek(0) {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            self.pos += 1;
        }
        if depth != 0 {
            return Err(ParseError::UnexpectedEof {
                context: "a parameter list",
                line: open_line,
            });
        }
        let inner = &self.toks[start..self.pos];
        self.pos += 1; // ')'
        Ok(split_params(inner))
    }
}

/// Splits a parameter list's tokens at top-level commas and extracts each
/// `name: Type` pair (the name is the last ident before the first top-level
/// `:`, covering `mut x: T`; `self` receivers have no `:` and are skipped).
fn split_params(toks: &[Token<'_>]) -> Vec<Binding> {
    let mut out = Vec::new();
    let mut seg_start = 0usize;
    let mut depth = 0i64;
    let mut angle = 0i64;
    let mut prev_minus = false;
    for i in 0..=toks.len() {
        let boundary = i == toks.len() || (toks[i].is_punct(',') && depth == 0 && angle <= 0);
        if boundary {
            if let Some(b) = param_binding(&toks[seg_start..i]) {
                out.push(b);
            }
            seg_start = i + 1;
            continue;
        }
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !prev_minus {
            angle -= 1;
        }
        prev_minus = t.is_punct('-');
    }
    out
}

fn param_binding(seg: &[Token<'_>]) -> Option<Binding> {
    let colon = seg.iter().position(|t| t.is_punct(':'))?;
    // `::` in a pattern path means this is not a simple `name: Type` pair.
    if seg.get(colon + 1).is_some_and(|t| t.is_punct(':')) {
        return None;
    }
    let name_tok = seg[..colon]
        .iter()
        .rev()
        .find(|t| t.kind == TokenKind::Ident)?;
    if name_tok.text == "self" {
        return None;
    }
    let ty: Vec<&str> = seg[colon + 1..].iter().map(|t| t.text).collect();
    Some(Binding {
        name: name_tok.text.to_string(),
        ty: ty.join(" "),
        line: name_tok.line,
    })
}

/// Scans a fn body's token range for calls, method calls, macro uses, and
/// explicitly ascribed `let` bindings.
fn scan_body(toks: &[Token<'_>], body: Range<usize>) -> (Vec<Call>, Vec<Binding>) {
    let mut calls = Vec::new();
    let mut lets = Vec::new();
    let is_p = |i: usize, c: char| body.contains(&i) && toks.get(i).is_some_and(|t| t.is_punct(c));
    let is_id =
        |i: usize| body.contains(&i) && toks.get(i).is_some_and(|t| t.kind == TokenKind::Ident);
    let mut i = body.start;
    while i < body.end {
        let t = &toks[i];
        // `let [mut] name : Type` — explicit ascription only.
        if t.is_ident("let") {
            let mut j = i + 1;
            if body.contains(&j) && toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if is_id(j) && is_p(j + 1, ':') && !is_p(j + 2, ':') {
                let name_tok = &toks[j];
                let mut ty_parts: Vec<&str> = Vec::new();
                let mut k = j + 2;
                let mut angle = 0i64;
                let mut depth = 0i64;
                let mut prev_minus = false;
                while k < body.end {
                    let tt = &toks[k];
                    if (tt.is_punct('=') || tt.is_punct(';')) && angle <= 0 && depth == 0 {
                        break;
                    }
                    if tt.is_punct('<') {
                        angle += 1;
                    } else if tt.is_punct('>') && !prev_minus {
                        angle -= 1;
                    } else if tt.is_punct('(') || tt.is_punct('[') {
                        depth += 1;
                    } else if tt.is_punct(')') || tt.is_punct(']') {
                        depth -= 1;
                        if depth < 0 {
                            break;
                        }
                    }
                    ty_parts.push(tt.text);
                    prev_minus = tt.is_punct('-');
                    k += 1;
                }
                lets.push(Binding {
                    name: name_tok.text.to_string(),
                    ty: ty_parts.join(" "),
                    line: name_tok.line,
                });
            }
            i += 1;
            continue;
        }
        // Method call: `.name(…)`, with optional turbofish `.name::<T>(…)`.
        if t.is_punct('.') && is_id(i + 1) {
            let name_tok = &toks[i + 1];
            let mut j = i + 2;
            if is_p(j, ':') && is_p(j + 1, ':') && is_p(j + 2, '<') {
                j = match skip_angles_at(toks, body.end, j + 2) {
                    Some(after) => after,
                    None => break,
                };
            }
            if is_p(j, '(') {
                calls.push(Call {
                    kind: CallKind::Method,
                    path: vec![name_tok.text.to_string()],
                    line: name_tok.line,
                });
            }
            i += 2;
            continue;
        }
        if t.kind == TokenKind::Ident {
            // Macro use: `name!…` (path prefix folded in below).
            if is_p(i + 1, '!') {
                calls.push(Call {
                    kind: CallKind::Macro,
                    path: path_ending_at(toks, body.start, i),
                    line: t.line,
                });
                i += 2;
                continue;
            }
            let callish = !(NON_CALL_KEYWORDS.contains(&t.text)
                || (i > body.start && toks[i - 1].is_punct('.')));
            if callish {
                // `name(…)` or `path::name(…)`.
                if is_p(i + 1, '(') {
                    calls.push(Call {
                        kind: CallKind::Path,
                        path: path_ending_at(toks, body.start, i),
                        line: t.line,
                    });
                }
                // `name::<T>(…)` turbofish on a path call.
                else if is_p(i + 1, ':') && is_p(i + 2, ':') && is_p(i + 3, '<') {
                    if let Some(after) = skip_angles_at(toks, body.end, i + 3) {
                        if is_p(after, '(') {
                            calls.push(Call {
                                kind: CallKind::Path,
                                path: path_ending_at(toks, body.start, i),
                                line: t.line,
                            });
                        }
                    }
                }
            }
        }
        i += 1;
    }
    (calls, lets)
}

/// Walks a `::`-joined path backwards from its final segment at `i`,
/// returning the segments in source order.
fn path_ending_at(toks: &[Token<'_>], start: usize, i: usize) -> Vec<String> {
    let mut segs = vec![toks[i].text.to_string()];
    let mut j = i;
    while j >= start + 3
        && toks[j - 1].is_punct(':')
        && toks[j - 2].is_punct(':')
        && toks[j - 3].kind == TokenKind::Ident
    {
        segs.push(toks[j - 3].text.to_string());
        j -= 3;
    }
    segs.reverse();
    segs
}

/// Skips a balanced `<…>` starting at index `at` (which holds `<`); returns
/// the index just past the closing `>`, or `None` if it never closes before
/// `end`. `->`'s `>` does not close a level.
fn skip_angles_at(toks: &[Token<'_>], end: usize, at: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut prev_minus = false;
    let mut j = at;
    while j < end {
        let t = &toks[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !prev_minus {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
        prev_minus = t.is_punct('-');
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile<'_> {
        match parse_file(src) {
            Ok(p) => p,
            Err(e) => panic!("parse failed: {e}"),
        }
    }

    #[test]
    fn free_fns_and_methods_get_qualified_names() {
        let src = "
            fn top() {}
            mod inner {
                pub struct S { pub x: u64 }
                impl S {
                    pub fn method(&self) -> u64 { self.x }
                }
                impl std::fmt::Display for S {
                    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { helper(f) }
                }
            }
        ";
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.qpath.as_str()).collect();
        assert_eq!(names, vec!["top", "inner::S::method", "inner::S::fmt"]);
        assert_eq!(p.fields.len(), 1);
        assert_eq!(p.fields[0].owner, "S");
        assert_eq!(p.fields[0].name, "x");
        assert_eq!(p.fields[0].ty, "u64");
    }

    #[test]
    fn calls_methods_and_macros_are_recorded() {
        let src = r#"
            fn f(x: u64) {
                helper(x);
                a::b::make(x);
                x.method();
                list.collect::<Vec<_>>();
                println!("{x}");
                Type::assoc(x);
            }
        "#;
        let p = parse(src);
        let f = &p.fns[0];
        let got: Vec<(CallKind, String)> = f
            .calls
            .iter()
            .map(|c| (c.kind, c.path.join("::")))
            .collect();
        assert_eq!(
            got,
            vec![
                (CallKind::Path, "helper".to_string()),
                (CallKind::Path, "a::b::make".to_string()),
                (CallKind::Method, "method".to_string()),
                (CallKind::Method, "collect".to_string()),
                (CallKind::Macro, "println".to_string()),
                (CallKind::Path, "Type::assoc".to_string()),
            ]
        );
        assert_eq!(f.bindings.len(), 1, "typed param x");
        assert_eq!(f.bindings[0].name, "x");
    }

    #[test]
    fn typed_lets_and_params_become_bindings() {
        let src = "
            fn f(count: usize, mut table: HashMap<u64, u64>) {
                let m: HashMap<String, Vec<u8>> = HashMap::new();
                let untyped = 3;
                let mut n: u64 = 0;
            }
        ";
        let p = parse(src);
        let b: Vec<(&str, &str)> = p.fns[0]
            .bindings
            .iter()
            .map(|b| (b.name.as_str(), b.ty.as_str()))
            .collect();
        assert_eq!(b[0], ("count", "usize"));
        assert_eq!(b[1].0, "table");
        assert!(b[1].1.contains("HashMap"));
        assert_eq!(b[2].0, "m");
        assert!(b[2].1.contains("HashMap"));
        assert_eq!(b[3], ("n", "u64"));
        assert_eq!(b.len(), 4, "untyped let is not a binding");
    }

    #[test]
    fn cfg_guards_are_inherited_from_modules() {
        let src = "
            #[cfg(test)]
            mod tests {
                fn in_tests() {}
            }
            #[cfg(feature = \"drill\")]
            mod gated {
                fn in_gate() {}
                #[cfg(test)]
                fn gated_test() {}
            }
            fn plain() {}
        ";
        let p = parse(src);
        let by_name = |n: &str| match p.fns.iter().find(|f| f.name == n) {
            Some(f) => f,
            None => panic!("fn {n} not parsed"),
        };
        assert!(by_name("in_tests").cfg_test);
        assert_eq!(by_name("in_gate").cfg_feature.as_deref(), Some("drill"));
        assert!(!by_name("in_gate").cfg_test);
        assert!(by_name("gated_test").cfg_test);
        assert!(!by_name("plain").cfg_test);
        assert!(by_name("plain").cfg_feature.is_none());
    }

    #[test]
    fn truncated_input_is_a_structured_error() {
        for src in [
            "fn f() { let x = ",
            "struct S { a: u64,",
            "mod m { fn g() {}",
            "impl Foo",
        ] {
            match parse_file(src) {
                Err(ParseError::UnexpectedEof { .. }) => {}
                other => panic!("expected UnexpectedEof for {src:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn deep_nesting_is_bounded_not_fatal() {
        let mut src = String::new();
        for i in 0..200 {
            src.push_str(&format!("mod m{i} {{ "));
        }
        match parse_file(&src) {
            Err(ParseError::TooDeep { .. }) => {}
            other => panic!("expected TooDeep, got {other:?}"),
        }
    }

    #[test]
    fn junk_between_items_is_skipped() {
        let src = "@ # $ fn ok() { x.go(); } ; ; enum E { A, B } fn two() {}";
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["ok", "two"]);
    }

    #[test]
    fn trait_defaults_and_declarations_parse() {
        let src = "
            trait Source {
                fn next(&mut self) -> Option<u8>;
                fn two(&mut self) -> Option<u8> { self.next() }
            }
        ";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].qpath, "Source::next");
        assert!(p.fns[0].body.is_empty());
        assert_eq!(p.fns[1].calls.len(), 1);
    }

    #[test]
    fn fn_pointer_generics_do_not_derail_the_header() {
        let src = "fn f<F: Fn(u64) -> u64>(g: F) -> u64 { g(1) }";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].calls.len(), 1, "g(1) is a call");
    }
}
