//! Coherence invariant checking over the baseline simulation suite.
//!
//! Drives the real workload traces (Q3, Q6, Q12) through fresh machines in
//! the configurations the reproduction reports — the MSI baseline and the
//! MESI variant — and sweeps every touched line through
//! [`dss_memsim::Machine::verify_coherence`] after each run. When the
//! `check-invariants` feature is enabled the per-transaction observer inside
//! the machine is also active, so a violation is caught at the clock it
//! first arises rather than at end of run.

use dss_core::{query_label, Workbench, STUDIED_QUERIES};
use dss_memsim::{CoherenceViolation, Machine, MachineConfig, Protocol};
use std::fmt;

/// A coherence violation, tagged with the run that produced it.
#[derive(Clone, Debug)]
pub struct InvariantFailure {
    /// Which run broke ("Q3 / MESI").
    pub run: String,
    /// The violation the checker reported.
    pub violation: CoherenceViolation,
}

impl fmt::Display for InvariantFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.run, self.violation)
    }
}

/// Summary of one verified run.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Run label ("Q3 / MSI baseline").
    pub run: String,
    /// Simulated execution cycles (evidence the run did real work).
    pub exec_cycles: u64,
}

/// Runs the baseline suite (studied queries × {MSI baseline, MESI}) with
/// invariant verification after every run.
///
/// # Errors
///
/// Returns the first [`InvariantFailure`]; the post-run sweep catches any
/// end-state inconsistency, and with the `check-invariants` feature the
/// mid-run observer catches transient ones with the offending clock.
pub fn check_baseline_suite(wb: &mut Workbench) -> Result<Vec<RunSummary>, InvariantFailure> {
    let configs: [(&str, MachineConfig); 2] = [
        ("MSI baseline", MachineConfig::baseline()),
        (
            "MESI",
            MachineConfig::baseline().with_protocol(Protocol::Mesi),
        ),
    ];
    let mut summaries = Vec::new();
    for query in STUDIED_QUERIES {
        let traces = wb.traces(query, 0);
        for (name, config) in &configs {
            let run = format!("{} / {name}", query_label(query));
            let mut machine = Machine::new(config.clone());
            let stats = machine.run(&traces);
            check_machine(&machine).map_err(|violation| InvariantFailure {
                run: run.clone(),
                violation,
            })?;
            summaries.push(RunSummary {
                run,
                exec_cycles: stats.exec_cycles(),
            });
        }
    }
    Ok(summaries)
}

/// Verifies one finished machine: the mid-run observer's verdict first (when
/// compiled in), then the exhaustive post-run sweep.
///
/// # Errors
///
/// Returns the violation, preferring the observer's (it carries the clock).
pub fn check_machine(machine: &Machine) -> Result<(), CoherenceViolation> {
    #[cfg(feature = "check-invariants")]
    if let Some(v) = machine.first_violation() {
        return Err(v.clone());
    }
    machine.verify_coherence()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_holds_the_invariants() {
        let mut wb = Workbench::small();
        let summaries = check_baseline_suite(&mut wb).expect("protocol invariants hold");
        assert_eq!(summaries.len(), STUDIED_QUERIES.len() * 2);
        assert!(summaries.iter().all(|s| s.exec_cycles > 0));
    }
}
