//! The `dss-check model` pass: exhaustive reachability checking of the
//! coherence-protocol transition kernel.
//!
//! The simulator routes every coherence decision through the pure kernel in
//! `dss_memsim::protocol`; this pass explores that kernel's *entire*
//! reachable state space over small configurations ({MSI, MESI} × 2–4
//! processors × 1–2 lines) and checks, at every reachable state:
//!
//! * **SWMR and directory–cache agreement** — the same
//!   [`dss_memsim::protocol::check_line`] rules the runtime observer
//!   (`Machine::verify_line`) enforces;
//! * **the data-value invariant** — via the kernel's freshness abstraction
//!   of symbolic write tokens ([`dss_memsim::protocol::check_data_value`]);
//! * **quiescence** — draining every cached copy reaches the stable
//!   uncached state.
//!
//! Because the machine takes its transitions from the same kernel, a clean
//! exploration vouches for the protocol the simulator actually runs — new
//! variants (the roadmap's MOESI, update-based protocols) land against this
//! gate instead of against golden statistics alone.
//!
//! A litmus suite pins individual transaction shapes (store-buffering
//! interleavings, dirty forwarding, MESI exclusive grants, prefetch
//! filtering) to their required final states, so a regression is reported as
//! the specific named scenario it breaks, not only as an abstract
//! reachability failure. Violations render as minimal replayable event
//! sequences ([`render_counterexample`]) that `dss-check` writes next to its
//! exit status for CI to archive.

use std::fmt::Write as _;

use dss_memsim::protocol::{
    check_data_value, check_line, explore, ExploreConfig, Kernel, ModelViolation, Op, ProtocolState,
};
use dss_memsim::Protocol;

/// One exhaustive exploration of a (protocol, processors, lines) point.
#[derive(Debug)]
pub struct ModelRun {
    /// Protocol variant explored.
    pub protocol: Protocol,
    /// Modeled processors.
    pub nprocs: usize,
    /// Independent lines modeled as a product space.
    pub nlines: usize,
    /// Distinct reachable states.
    pub states: usize,
    /// Transitions examined.
    pub transitions: usize,
    /// Whether the space was exhausted.
    pub complete: bool,
    /// The first violation found, if any (with a minimal replay path).
    pub violation: Option<ModelViolation>,
}

impl ModelRun {
    /// Whether this run is a finding (violation or un-exhausted space).
    pub fn is_finding(&self) -> bool {
        self.violation.is_some() || !self.complete
    }
}

/// Result of one litmus test: `failure` describes what diverged from the
/// required behavior, `None` means the scenario played out as pinned.
#[derive(Debug)]
pub struct LitmusOutcome {
    /// Scenario name.
    pub name: &'static str,
    /// What went wrong, if anything.
    pub failure: Option<String>,
}

/// Everything the model pass measured.
#[derive(Debug)]
pub struct ModelReport {
    /// Exhaustive explorations, in matrix order.
    pub runs: Vec<ModelRun>,
    /// Litmus outcomes, in suite order.
    pub litmus: Vec<LitmusOutcome>,
}

impl ModelReport {
    /// Findings: violations, incomplete explorations, and failed litmus
    /// tests.
    pub fn findings(&self) -> usize {
        self.runs.iter().filter(|r| r.is_finding()).count()
            + self.litmus.iter().filter(|l| l.failure.is_some()).count()
    }

    /// The first exploration that found a violation, if any.
    pub fn first_violation(&self) -> Option<&ModelRun> {
        self.runs.iter().find(|r| r.violation.is_some())
    }
}

/// Human name of a protocol variant.
pub fn protocol_name(p: Protocol) -> &'static str {
    match p {
        Protocol::Msi => "MSI",
        Protocol::Mesi => "MESI",
    }
}

/// Runs the full model pass: the exhaustive exploration matrix
/// ({MSI, MESI} × 2–4 processors × 1–2 lines, quiescence checked) plus the
/// litmus suite.
pub fn check_model() -> ModelReport {
    let mut runs = Vec::new();
    for protocol in [Protocol::Msi, Protocol::Mesi] {
        for nprocs in 2..=4usize {
            for nlines in 1..=2usize {
                let kernel = Kernel::new(protocol);
                let ex = explore(&kernel, &ExploreConfig::new(nprocs, nlines));
                runs.push(ModelRun {
                    protocol,
                    nprocs,
                    nlines,
                    states: ex.states,
                    transitions: ex.transitions,
                    complete: ex.complete,
                    violation: ex.violation,
                });
            }
        }
    }
    let litmus = LITMUS.iter().map(run_litmus).collect();
    ModelReport { runs, litmus }
}

/// Renders a violating run as a replayable counterexample: the kernel
/// configuration, the violated rule, the minimal op sequence from reset, and
/// the state it reaches. Empty string for clean runs.
pub fn render_counterexample(run: &ModelRun) -> String {
    let Some(v) = &run.violation else {
        return String::new();
    };
    let mut out = String::new();
    let _ = writeln!(out, "dss-check model counterexample");
    let _ = writeln!(
        out,
        "kernel: {}, {} processors, {} modeled line(s)",
        protocol_name(run.protocol),
        run.nprocs,
        run.nlines
    );
    let _ = writeln!(out, "violated rule: {} (on line {})", v.rule, v.line);
    let _ = writeln!(out, "replay from reset:");
    for (i, (line, op)) in v.path.iter().enumerate() {
        let _ = writeln!(out, "  {}. line {line}: {op}", i + 1);
    }
    let _ = writeln!(out, "state after replay:");
    for (li, s) in v.states.iter().enumerate() {
        let _ = writeln!(out, "  line {li}: {}", render_state(s, run.nprocs));
    }
    out
}

/// One-line rendering of a protocol state over `nprocs` nodes.
fn render_state(s: &ProtocolState, nprocs: usize) -> String {
    let mut caches = String::new();
    for node in 0..nprocs {
        if node > 0 {
            caches.push_str(", ");
        }
        match s.caches.get(node).copied().flatten() {
            Some(state) => {
                let _ = write!(caches, "P{node}={state:?}");
            }
            None => {
                let _ = write!(caches, "P{node}=-");
            }
        }
    }
    format!(
        "caches [{caches}] directory {{ sharers: {:#b}, owner: {:?} }} fresh={:#b} memory {}",
        s.entry.sharers,
        s.entry.owner,
        s.fresh,
        if s.mem_fresh { "current" } else { "stale" },
    )
}

/// A pinned event sequence with a required outcome: `ops` replay from reset
/// (every intermediate state must satisfy the invariants), then `check`
/// judges the final per-line states.
struct Litmus {
    name: &'static str,
    protocol: Protocol,
    nprocs: usize,
    nlines: usize,
    ops: &'static [(usize, Op)],
    check: fn(&[ProtocolState]) -> Result<(), String>,
}

const R0: Op = Op::Read { node: 0 };
const R1: Op = Op::Read { node: 1 };
const W0: Op = Op::Write { node: 0 };
const W1: Op = Op::Write { node: 1 };
const W2: Op = Op::Write { node: 2 };
const E0: Op = Op::Evict { node: 0 };
const PF0: Op = Op::Prefetch { node: 0 };

use dss_memsim::LineState::{Exclusive, Modified, Shared};

/// The litmus suite: message-ordering and transaction-shape scenarios with
/// required final states.
static LITMUS: &[Litmus] = &[
    Litmus {
        name: "msi-read-installs-shared",
        protocol: Protocol::Msi,
        nprocs: 2,
        nlines: 1,
        ops: &[(0, R0)],
        check: |s| {
            expect(s[0].caches[0] == Some(Shared), "P0 holds Shared")?;
            expect(s[0].entry.sharers == 0b1, "P0 in the sharer mask")
        },
    },
    Litmus {
        name: "read-share",
        protocol: Protocol::Msi,
        nprocs: 2,
        nlines: 1,
        ops: &[(0, R0), (0, R1)],
        check: |s| {
            expect(
                s[0].caches[0] == Some(Shared) && s[0].caches[1] == Some(Shared),
                "both nodes hold Shared",
            )?;
            expect(
                s[0].entry.sharers == 0b11 && s[0].entry.owner.is_none(),
                "directory lists both, owns neither",
            )
        },
    },
    Litmus {
        name: "write-invalidates-sharers",
        protocol: Protocol::Msi,
        nprocs: 3,
        nlines: 1,
        ops: &[(0, R0), (0, R1), (0, W2)],
        check: |s| {
            expect(
                s[0].caches[0].is_none() && s[0].caches[1].is_none(),
                "both sharers invalidated",
            )?;
            expect(s[0].caches[2] == Some(Modified), "writer holds Modified")?;
            expect(s[0].entry.owner == Some(2), "writer owns the line")
        },
    },
    Litmus {
        name: "mesi-exclusive-grant",
        protocol: Protocol::Mesi,
        nprocs: 2,
        nlines: 1,
        ops: &[(0, R0)],
        check: |s| {
            expect(s[0].caches[0] == Some(Exclusive), "sole reader granted E")?;
            expect(s[0].entry.owner == Some(0), "grant recorded as ownership")
        },
    },
    Litmus {
        name: "mesi-silent-upgrade",
        protocol: Protocol::Mesi,
        nprocs: 2,
        nlines: 1,
        ops: &[(0, R0), (0, W0)],
        check: |s| {
            expect(s[0].caches[0] == Some(Modified), "E upgraded to M in place")?;
            expect(s[0].entry.owner == Some(0), "ownership unchanged")
        },
    },
    Litmus {
        name: "mesi-second-reader-shares",
        protocol: Protocol::Mesi,
        nprocs: 2,
        nlines: 1,
        ops: &[(0, R0), (0, R1)],
        check: |s| {
            expect(
                s[0].caches[0] == Some(Shared) && s[0].caches[1] == Some(Shared),
                "exclusive copy downgraded for the second reader",
            )
        },
    },
    Litmus {
        name: "dirty-forward-refreshes-memory",
        protocol: Protocol::Msi,
        nprocs: 3,
        nlines: 1,
        ops: &[(0, W0), (0, R1)],
        check: |s| {
            expect(
                s[0].caches[0] == Some(Shared) && s[0].caches[1] == Some(Shared),
                "dirty owner downgraded, reader filled",
            )?;
            expect(s[0].mem_fresh, "forwarded data also updated memory")?;
            expect(s[0].fresh == 0b11, "both copies hold the written value")
        },
    },
    Litmus {
        name: "evict-writeback-quiesces",
        protocol: Protocol::Msi,
        nprocs: 2,
        nlines: 1,
        ops: &[(0, W0), (0, E0)],
        check: |s| {
            expect(
                s[0].is_quiescent(2),
                "writeback drained to the stable state",
            )
        },
    },
    Litmus {
        name: "prefetch-skips-dirty",
        protocol: Protocol::Mesi,
        nprocs: 2,
        nlines: 1,
        ops: &[(0, W1), (0, PF0)],
        check: |s| {
            expect(
                s[0].caches[0].is_none(),
                "prefetcher skipped the owned line",
            )?;
            expect(s[0].caches[1] == Some(Modified), "owner undisturbed")
        },
    },
    Litmus {
        name: "invalidate-then-reread",
        protocol: Protocol::Msi,
        nprocs: 2,
        nlines: 1,
        ops: &[(0, R0), (0, W1), (0, R0)],
        check: |s| {
            expect(s[0].fresh & 0b1 != 0, "re-read observes the new value")?;
            expect(
                s[0].caches[0] == Some(Shared) && s[0].caches[1] == Some(Shared),
                "writer downgraded for the re-read",
            )
        },
    },
    // The store-buffering interleaving (P0: W x; R y || P1: W y; R x) over
    // two lines: both reads must observe the other node's write.
    Litmus {
        name: "store-buffering",
        protocol: Protocol::Msi,
        nprocs: 2,
        nlines: 2,
        ops: &[(0, W0), (1, W1), (1, R0), (0, R1)],
        check: |s| {
            expect(s[1].fresh & 0b1 != 0, "P0's read of y observes P1's write")?;
            expect(s[0].fresh & 0b10 != 0, "P1's read of x observes P0's write")?;
            expect(
                s[0].caches[0] == Some(Shared) && s[0].caches[1] == Some(Shared),
                "x settles shared",
            )?;
            expect(
                s[1].caches[0] == Some(Shared) && s[1].caches[1] == Some(Shared),
                "y settles shared",
            )
        },
    },
];

/// `Ok(())` if `cond`, else the failed requirement.
fn expect(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(format!("expected {what}"))
    }
}

/// Replays one litmus scenario through the kernel, checking the invariants
/// at every step and the pinned outcome at the end.
fn run_litmus(l: &Litmus) -> LitmusOutcome {
    let kernel = Kernel::new(l.protocol);
    let mut states = vec![ProtocolState::reset(); l.nlines];
    for (i, (line, op)) in l.ops.iter().enumerate() {
        let Some(s) = states.get(*line).copied() else {
            return LitmusOutcome {
                name: l.name,
                failure: Some(format!("op {} targets line {line} of {}", i + 1, l.nlines)),
            };
        };
        states[*line] = kernel.step(s, *op).0;
        for (li, s) in states.iter().enumerate() {
            let verdict = check_line(&s.caches[..l.nprocs], s.entry)
                .and_then(|()| check_data_value(s, l.nprocs));
            if let Err(rule) = verdict {
                return LitmusOutcome {
                    name: l.name,
                    failure: Some(format!(
                        "invariant broken after op {} ({op} on line {line}): {rule}; line {li}: {}",
                        i + 1,
                        render_state(s, l.nprocs)
                    )),
                };
            }
        }
    }
    let failure = (l.check)(&states).err().map(|why| {
        let rendered: Vec<String> = states
            .iter()
            .enumerate()
            .map(|(li, s)| format!("line {li}: {}", render_state(s, l.nprocs)))
            .collect();
        format!("{why}; final state {}", rendered.join("; "))
    });
    LitmusOutcome {
        name: l.name,
        failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_memsim::protocol::KernelFault;

    #[test]
    fn the_full_matrix_is_clean_and_exhausted() {
        let report = check_model();
        assert_eq!(
            report.runs.len(),
            12,
            "2 protocols × 3 sizes × 2 line counts"
        );
        for run in &report.runs {
            assert!(run.complete, "{:?} not exhausted", run);
            assert!(run.violation.is_none(), "violation: {:?}", run.violation);
        }
        assert_eq!(report.findings(), 0);
        assert!(report.first_violation().is_none());
    }

    #[test]
    fn every_litmus_scenario_passes_on_the_real_kernel() {
        let report = check_model();
        assert!(!report.litmus.is_empty());
        for l in &report.litmus {
            assert!(l.failure.is_none(), "{}: {:?}", l.name, l.failure);
        }
    }

    #[test]
    fn counterexamples_render_as_replayable_sequences() {
        let kernel = Kernel::with_fault(Protocol::Msi, KernelFault::SilentUpgradeMsi);
        let ex = explore(&kernel, &ExploreConfig::new(2, 1));
        let run = ModelRun {
            protocol: Protocol::Msi,
            nprocs: 2,
            nlines: 1,
            states: ex.states,
            transitions: ex.transitions,
            complete: ex.complete,
            violation: ex.violation,
        };
        assert!(run.is_finding());
        let text = render_counterexample(&run);
        assert!(text.contains("violated rule: a node holds the line writable"));
        assert!(text.contains("replay from reset:"));
        assert!(text.contains("1. line 0: P0 Read"), "{text}");
        assert!(text.contains("2. line 0: P0 Write"), "{text}");
        assert!(text.contains("memory stale"), "{text}");
    }

    #[test]
    fn clean_runs_render_nothing() {
        let run = ModelRun {
            protocol: Protocol::Mesi,
            nprocs: 2,
            nlines: 1,
            states: 1,
            transitions: 0,
            complete: true,
            violation: None,
        };
        assert!(render_counterexample(&run).is_empty());
        assert!(!run.is_finding());
    }

    #[test]
    fn a_broken_litmus_outcome_names_the_divergence() {
        // Run the prefetch litmus against a kernel with the silent-upgrade
        // fault: the scenario itself is unaffected, so instead check a
        // deliberately wrong predicate reports through `failure`.
        let bad = Litmus {
            name: "deliberately-wrong",
            protocol: Protocol::Msi,
            nprocs: 2,
            nlines: 1,
            ops: &[(0, R0)],
            check: |s| expect(s[0].caches[0].is_none(), "reader cached nothing"),
        };
        let out = run_litmus(&bad);
        let failure = out.failure.expect("predicate must fail");
        assert!(failure.contains("expected reader cached nothing"));
        assert!(failure.contains("final state"), "{failure}");
    }
}
