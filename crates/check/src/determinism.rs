//! `dss-check determinism` — static source→sink taint over the call graph.
//!
//! Every result in the reproduction rests on one invariant: same seed ⇒
//! bit-identical stdout at any `--jobs`/`--gen-jobs`/chunk size/trace mode.
//! The golden tests and CI cmp drills enforce it dynamically; this pass adds
//! the static story. It classifies nondeterminism **sources** —
//! `Instant::now`/`SystemTime::now`, iteration over `RandomState`-hashed
//! `HashMap`/`HashSet` state, `thread::current()`, environment reads
//! (`env::var`, `env::temp_dir`, `available_parallelism`, `process::id`),
//! and pointer→integer casts — and **sinks** — the byte-diffable stdout
//! surface and `--bench-json` writer in `repro`, and the trace/block codec
//! writers — then reports every source whose function lies inside a sink's
//! transitive call tree, with the shortest sink→source call chain.
//!
//! Intentional nondeterminism (stderr timing, `PipelineStats` stall
//! accounting, tmp-file naming) is allowlisted in a committed
//! `crates/check/determinism-allow.txt` with the same justified-entry and
//! stale-entry discipline as `lint-allow.txt`.
//!
//! The taint lattice is two-point (clean / tainted-reaches-sink) over fns,
//! not values: a source *anywhere inside* a sink's dynamic extent is assumed
//! able to reach the sink's output. That over-approximates (a watchdog
//! timestamp that only gates a deadline still flags) and the allowlist
//! absorbs the reviewed exceptions; the converse under-approximation —
//! a tainted value returned upward past the sink's caller — is covered by
//! sink roots sitting high (e.g. `repro`'s `main`). DESIGN.md §5i has the
//! full inventory.

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

use crate::callgraph::{load_workspace, CallGraph, SourceFile};
use crate::lexer::{Token, TokenKind};
use crate::lint::Allowlist;
use crate::parse::{parse_file, Binding, CallKind};

/// Classification for wall-clock reads on a sink path.
pub const RULE_TIME: &str = "wall-clock time reaches a byte-diffable sink";
/// Classification for hash-order-dependent iteration on a sink path.
pub const RULE_HASH_ORDER: &str = "hash-iteration order reaches a byte-diffable sink";
/// Classification for thread-identity reads on a sink path.
pub const RULE_THREAD_ID: &str = "thread identity reaches a byte-diffable sink";
/// Classification for environment reads on a sink path.
pub const RULE_ENV: &str = "environment read reaches a byte-diffable sink";
/// Classification for address-as-value casts on a sink path.
pub const RULE_ADDR: &str = "address-as-value cast reaches a byte-diffable sink";
/// Classification for files the parser could not follow (nothing can be
/// proven about a file that did not parse).
pub const RULE_PARSE: &str = "file not analyzable by the syntactic parser";

/// Methods whose call on a hash container observes its iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// `std::env` functions that read the environment.
const ENV_FNS: &[&str] = &["var", "var_os", "vars", "vars_os", "temp_dir"];

/// Byte-diffable sink surfaces: `(file substring, selector)`. A fn in a
/// matching file is a sink root when the selector recognizes it.
const SINK_SPECS: &[(&str, SinkSel)] = &[
    // repro's stdout tables/checks and its --bench-json writer.
    ("crates/bench/src/bin/repro.rs", SinkSel::StdoutOrReport),
    // The trace/block codec writers: the on-disk byte stream they produce
    // is itself diffed by the CI cmp drills.
    ("crates/trace/src/io.rs", SinkSel::CodecWriters),
];

/// How a sink spec recognizes root fns within its file.
#[derive(Clone, Copy, Debug)]
enum SinkSel {
    /// Uses `print!`/`println!`, calls `write_atomic`, or is named
    /// `to_json` (the bench-json serializer).
    StdoutOrReport,
    /// Is named `write_*` or is a `BlockWriter` method.
    CodecWriters,
}

/// One determinism finding (post-allowlist).
#[derive(Clone, Debug)]
pub struct DetFinding {
    /// Workspace-relative file of the source site.
    pub file: PathBuf,
    /// 1-based line of the source site (0 for whole-file findings).
    pub line: usize,
    /// The classification rule that fired.
    pub rule: &'static str,
    /// What the source is (`Instant::now`, `iteration over \`cache\``, …).
    pub what: String,
    /// The sink→source call chain, rendered with qualified fn names.
    pub chain: String,
}

impl std::fmt::Display for DetFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} — via {}",
            self.file.display(),
            self.line,
            self.rule,
            self.what,
            self.chain
        )
    }
}

/// The determinism pass's result.
#[derive(Clone, Debug, Default)]
pub struct DetReport {
    /// Findings that survived the allowlist.
    pub findings: Vec<DetFinding>,
    /// Allowlist entries that no longer match anything.
    pub stale: Vec<String>,
    /// Source sites seen before allowlisting (reported for scale).
    pub sources_seen: usize,
    /// Sink-root fns identified.
    pub sink_roots: usize,
    /// Functions analyzed.
    pub fns: usize,
}

/// Runs the determinism pass over the workspace at `root`, consulting the
/// committed `crates/check/determinism-allow.txt`.
///
/// # Errors
///
/// Propagates filesystem errors; findings are data, not errors.
pub fn check_determinism(root: &Path) -> io::Result<(DetReport, Allowlist)> {
    let files = load_workspace(root)?;
    let mut allow = Allowlist::load_at(root, "crates/check/determinism-allow.txt")?;
    let report = analyze_determinism(&files, &mut allow, &[]);
    Ok((report, allow))
}

/// Pure analysis over an explicit file set — the workspace pass and the
/// fault-injection drill share this entry point.
pub fn analyze_determinism(
    files: &[SourceFile],
    allow: &mut Allowlist,
    features: &[&str],
) -> DetReport {
    let graph = CallGraph::build(files);
    let mut report = DetReport {
        fns: graph.nodes.len(),
        ..DetReport::default()
    };

    // A file that does not parse hides an unknown number of sources.
    for (fi, err) in &graph.parse_errors {
        report.sources_seen += 1;
        let file = &files[*fi].rel;
        if !allow.permits(file, &err.to_string()) {
            report.findings.push(DetFinding {
                file: file.clone(),
                line: 0,
                rule: RULE_PARSE,
                what: err.to_string(),
                chain: "(no call graph for this file)".to_string(),
            });
        }
    }

    let roots: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| is_sink_root(&graph, files, i))
        .collect();
    report.sink_roots = roots.len();
    let parents = graph.reach_from(&roots, features);

    // Fields anywhere in the workspace whose type hashes with RandomState;
    // receivers are matched by name (an over-approximation the allowlist
    // absorbs — a same-named ordered container would flag, not hide).
    let hash_fields: BTreeSet<String> = files
        .iter()
        .filter_map(|f| parse_file(&f.text).ok())
        .flat_map(|p| p.fields)
        .filter(|f| is_hash_type(&f.ty))
        .map(|f| f.name)
        .collect();

    for (fi, file) in files.iter().enumerate() {
        let Ok(parsed) = parse_file(&file.text) else {
            continue; // already reported above
        };
        let lines: Vec<&str> = file.text.lines().collect();
        for (oi, f) in parsed.fns.iter().enumerate() {
            let node = graph.by_file[fi][oi];
            if !graph.enabled(node, features) || parents[node].is_none() {
                continue;
            }
            let mut local_hash: BTreeSet<&str> = hash_fields.iter().map(String::as_str).collect();
            for Binding { name, ty, .. } in &f.bindings {
                if is_hash_type(ty) {
                    local_hash.insert(name);
                }
            }
            let sites = scan_sources(&parsed.toks, f.body.clone(), &local_hash);
            report.sources_seen += sites.len();
            if sites.is_empty() {
                continue;
            }
            let chain = graph.render_chain(&graph.chain(&parents, node));
            for (line, rule, what) in sites {
                let line_text = lines.get(line.saturating_sub(1)).copied().unwrap_or("");
                if !allow.permits(&file.rel, line_text) {
                    report.findings.push(DetFinding {
                        file: file.rel.clone(),
                        line,
                        rule,
                        what,
                        chain: chain.clone(),
                    });
                }
            }
        }
    }
    report.stale = allow.unused();
    report
}

/// Whether `ty` (space-joined type tokens) names a `RandomState`-hashed
/// container.
fn is_hash_type(ty: &str) -> bool {
    ty.split(' ').any(|w| w == "HashMap" || w == "HashSet")
}

/// Whether graph node `i` is a sink root per [`SINK_SPECS`].
fn is_sink_root(graph: &CallGraph, files: &[SourceFile], i: usize) -> bool {
    let node = &graph.nodes[i];
    let rel = files[node.file].rel.to_string_lossy();
    for (file_pat, sel) in SINK_SPECS {
        if !rel.ends_with(file_pat) {
            continue;
        }
        let hit = match sel {
            SinkSel::StdoutOrReport => {
                node.name == "to_json"
                    || node.calls.iter().any(|c| {
                        (c.kind == CallKind::Macro
                            && (c.name() == "println" || c.name() == "print"))
                            || (c.kind == CallKind::Path && c.name() == "write_atomic")
                    })
            }
            SinkSel::CodecWriters => {
                node.name.starts_with("write") || node.self_ty.as_deref() == Some("BlockWriter")
            }
        };
        if hit {
            return true;
        }
    }
    false
}

/// Scans one fn body for nondeterminism sources. Returns
/// `(line, rule, what)` triples in token order.
fn scan_sources(
    toks: &[Token<'_>],
    body: std::ops::Range<usize>,
    hash_names: &BTreeSet<&str>,
) -> Vec<(usize, &'static str, String)> {
    let mut out = Vec::new();
    let id = |i: usize, s: &str| body.contains(&i) && toks[i].is_ident(s);
    let p = |i: usize, c: char| body.contains(&i) && toks[i].is_punct(c);
    let path2 =
        |i: usize, a: &str, b: &str| id(i, a) && p(i + 1, ':') && p(i + 2, ':') && id(i + 3, b);
    for i in body.clone() {
        let t = &toks[i];
        let line = t.line;
        if path2(i, "Instant", "now") || path2(i, "SystemTime", "now") {
            out.push((line, RULE_TIME, format!("`{}::now`", t.text)));
        } else if path2(i, "thread", "current") {
            out.push((line, RULE_THREAD_ID, "`thread::current`".to_string()));
        } else if path2(i, "process", "id") {
            out.push((line, RULE_ENV, "`process::id`".to_string()));
        } else if t.is_ident("env")
            && p(i + 1, ':')
            && p(i + 2, ':')
            && body.contains(&(i + 3))
            && toks[i + 3].kind == TokenKind::Ident
            && ENV_FNS.contains(&toks[i + 3].text)
        {
            out.push((line, RULE_ENV, format!("`env::{}`", toks[i + 3].text)));
        } else if t.is_ident("available_parallelism") && p(i + 1, '(') {
            out.push((line, RULE_ENV, "`available_parallelism`".to_string()));
        } else if t.is_ident("as") && p(i + 1, '*') {
            out.push((line, RULE_ADDR, "raw-pointer cast chain".to_string()));
        } else if (t.is_ident("as_ptr") || t.is_ident("as_mut_ptr"))
            && p(i + 1, '(')
            && p(i + 2, ')')
            && id(i + 3, "as")
        {
            out.push((line, RULE_ADDR, format!("`{}() as …`", t.text)));
        } else if t.is_punct('.')
            && body.contains(&(i + 1))
            && toks[i + 1].kind == TokenKind::Ident
            && ITER_METHODS.contains(&toks[i + 1].text)
            && p(i + 2, '(')
            && i > body.start
            && toks[i - 1].kind == TokenKind::Ident
            && hash_names.contains(toks[i - 1].text)
        {
            out.push((
                line,
                RULE_HASH_ORDER,
                format!(
                    "`{}.{}()` on a hash container",
                    toks[i - 1].text,
                    toks[i + 1].text
                ),
            ));
        } else if t.is_ident("for") {
            // `for pat in EXPR {`: a hash-typed name anywhere in EXPR.
            if let Some((name, at)) = for_loop_hash_expr(toks, &body, i, hash_names) {
                out.push((
                    at,
                    RULE_HASH_ORDER,
                    format!("`for … in` over hash container `{name}`"),
                ));
            }
        }
    }
    out
}

/// For a `for` at `i`, finds a hash-typed ident inside the iterated
/// expression (between top-level `in` and the loop's `{`).
fn for_loop_hash_expr(
    toks: &[Token<'_>],
    body: &std::ops::Range<usize>,
    i: usize,
    hash_names: &BTreeSet<&str>,
) -> Option<(String, usize)> {
    let mut depth = 0i64;
    let mut j = i + 1;
    // Find the pattern's `in`.
    while j < body.end {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') || t.is_punct(';') {
            return None; // not a for-loop shape we follow
        } else if t.is_ident("in") && depth == 0 {
            break;
        }
        j += 1;
    }
    let mut k = j + 1;
    let mut depth = 0i64;
    while k < body.end {
        let t = &toks[k];
        if t.is_punct('{') && depth == 0 {
            return None;
        }
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.kind == TokenKind::Ident
            && hash_names.contains(t.text)
            && !toks.get(k + 1).is_some_and(|n| n.is_punct('.'))
        {
            // A hash name followed by `.` is deferred to the method rule
            // (`seen.drain()` would double-report); bare names — `&self.map`
            // ends in one — flag here.
            return Some((t.text.to_string(), t.line));
        }
        k += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, text: &str) -> SourceFile {
        SourceFile {
            rel: PathBuf::from(rel),
            text: text.to_string(),
        }
    }

    fn sink_main(body: &str) -> SourceFile {
        file(
            "crates/bench/src/bin/repro.rs",
            &format!("fn main() {{ println!(\"t\"); {body} }}"),
        )
    }

    #[test]
    fn source_inside_sink_extent_is_a_finding() {
        let files = [
            sink_main("helper();"),
            file(
                "crates/core/src/sim.rs",
                "pub fn helper() { let t = Instant::now(); }",
            ),
        ];
        let mut allow = Allowlist::default();
        let r = analyze_determinism(&files, &mut allow, &[]);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, RULE_TIME);
        assert!(r.findings[0].chain.contains("main -> helper"));
    }

    #[test]
    fn source_outside_any_sink_extent_is_clean() {
        let files = [
            sink_main(""),
            file(
                "crates/core/src/sim.rs",
                "pub fn unreached() { let t = Instant::now(); }",
            ),
        ];
        let r = analyze_determinism(&files, &mut Allowlist::default(), &[]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn hash_iteration_flags_fields_and_locals() {
        let files = [
            sink_main("render(); drainit();"),
            file(
                "crates/query/src/exec.rs",
                "struct S { cache: HashMap<u64, u64> }
                 impl S {
                     fn render(&self) { for (k, v) in &self.cache { emit(k); } }
                     fn drainit(&self) {
                         let mut seen: HashSet<u64> = HashSet::new();
                         for v in seen.drain() { emit(v); }
                     }
                 }
                 fn emit(_: u64) {}",
            ),
        ];
        let r = analyze_determinism(&files, &mut Allowlist::default(), &[]);
        let rules: Vec<&str> = r.findings.iter().map(|f| f.rule).collect();
        assert_eq!(
            rules,
            vec![RULE_HASH_ORDER, RULE_HASH_ORDER],
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn count_only_hash_use_is_clean() {
        let files = [
            sink_main("count();"),
            file(
                "crates/query/src/agg.rs",
                "struct A { distinct: HashSet<u64> }
                 impl A { fn count(&self) -> usize { self.distinct.len() } }",
            ),
        ];
        let r = analyze_determinism(&files, &mut Allowlist::default(), &[]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn allowlist_absorbs_and_ratchets() {
        let files = [
            sink_main("helper();"),
            file(
                "crates/core/src/sim.rs",
                "pub fn helper() { let started = Instant::now(); }",
            ),
        ];
        let mut allow = Allowlist::parse("crates/core/src/sim.rs :: Instant::now\n");
        let r = analyze_determinism(&files, &mut allow, &[]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(r.stale.is_empty());
        assert_eq!(r.sources_seen, 1, "source still counted");

        let mut stale = Allowlist::parse("crates/core/src/sim.rs :: SystemTime\n");
        let r = analyze_determinism(&files, &mut stale, &[]);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.stale.len(), 1, "unmatched entry is stale");
    }

    #[test]
    fn env_thread_and_parse_failures_flag() {
        let files = [
            sink_main("a(); b(); c();"),
            file(
                "crates/core/src/workload.rs",
                "pub fn a() { let d = std::env::temp_dir(); }
                 pub fn b() { let j = std::thread::available_parallelism(); }
                 pub fn c() { let id = std::thread::current(); }",
            ),
            file("crates/core/src/broken.rs", "fn broken() { let x = "),
        ];
        let r = analyze_determinism(&files, &mut Allowlist::default(), &[]);
        let rules: BTreeSet<&str> = r.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(RULE_ENV), "{:?}", r.findings);
        assert!(rules.contains(RULE_THREAD_ID));
        assert!(rules.contains(RULE_PARSE));
    }

    #[test]
    fn codec_writers_are_sink_roots() {
        let files = [file(
            "crates/trace/src/io.rs",
            "pub fn write_trace_file() { stamp(); }
             fn stamp() { let t = SystemTime::now(); }",
        )];
        let r = analyze_determinism(&files, &mut Allowlist::default(), &[]);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert!(r.findings[0].chain.contains("write_trace_file -> stamp"));
    }
}
