//! Property tests for the emulated address spaces.

use dss_shmem::{private_owner, AddressSpace, PrivateHeap};
use dss_trace::DataClass;
use proptest::prelude::*;

proptest! {
    /// Any sequence of region mappings yields pairwise-disjoint regions, and
    /// every interior address classifies back to the region's class.
    #[test]
    fn mapped_regions_are_disjoint(sizes in proptest::collection::vec(1u64..100_000, 1..20)) {
        let mut space = AddressSpace::new();
        let classes = [DataClass::Data, DataClass::Index, DataClass::BufDesc, DataClass::LockHash];
        let mut mapped = Vec::new();
        for (i, len) in sizes.iter().enumerate() {
            let class = classes[i % classes.len()];
            let align = 1u64 << (i % 8);
            let base = space.map_region(&format!("r{i}"), class, *len, align);
            mapped.push((base, *len, class));
        }
        for (i, (base, len, class)) in mapped.iter().enumerate() {
            prop_assert_eq!(space.classify(*base), Some(*class));
            prop_assert_eq!(space.classify(base + len - 1), Some(*class));
            for (j, (b2, l2, _)) in mapped.iter().enumerate() {
                if i != j {
                    prop_assert!(base + len <= *b2 || b2 + l2 <= *base, "regions {i} and {j} overlap");
                }
            }
        }
    }

    /// Live chunks handed out by a private heap never overlap, regardless of
    /// the interleaving of allocs and frees.
    #[test]
    fn heap_live_chunks_disjoint(ops in proptest::collection::vec((1u64..1000, any::<bool>()), 1..200)) {
        let mut heap = PrivateHeap::new(0);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (size, is_free) in ops {
            if is_free && !live.is_empty() {
                let (addr, sz) = live.swap_remove(size as usize % live.len());
                heap.free(addr, sz);
            } else {
                let addr = heap.alloc(size);
                // Conservative bound: the chunk spans at least `size` bytes.
                for (a, s) in &live {
                    let other_end = a + s;
                    prop_assert!(addr + size <= *a || other_end <= addr,
                        "chunk {addr:#x}+{size} overlaps live {a:#x}+{s}");
                }
                live.push((addr, size));
            }
        }
    }

    /// Every address a private heap returns belongs to its owner's segment.
    #[test]
    fn heap_addresses_belong_to_owner(proc_id in 0usize..8, sizes in proptest::collection::vec(1u64..5000, 1..50)) {
        let mut heap = PrivateHeap::new(proc_id);
        for size in sizes {
            let addr = heap.alloc(size);
            prop_assert_eq!(private_owner(addr), Some(proc_id));
        }
    }
}
