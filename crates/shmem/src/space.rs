//! The shared-segment region table.

use dss_trace::DataClass;

use crate::SHARED_BASE;

/// One mapped region of the shared segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vma {
    /// Human-readable name ("buffer blocks", "lock hash", …).
    pub name: String,
    /// Data-structure class of everything inside the region.
    pub class: DataClass,
    /// First address of the region.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Vma {
    /// Whether `addr` falls inside this region.
    pub fn contains(&self, addr: u64) -> bool {
        (self.base..self.base + self.len).contains(&addr)
    }
}

/// The emulated shared segment: an append-only table of classified regions.
///
/// Components map their regions once at startup (descriptor arrays, hash
/// tables, the buffer block pool) and then compute element addresses
/// themselves (`base + index * element_size`). The table answers the reverse
/// question — which data structure does an address belong to — used by
/// validation tests and debugging tools.
#[derive(Clone, Debug, Default)]
pub struct AddressSpace {
    vmas: Vec<Vma>,
    next: u64,
}

impl AddressSpace {
    /// Creates an empty shared segment starting at [`SHARED_BASE`].
    pub fn new() -> Self {
        AddressSpace {
            vmas: Vec::new(),
            next: SHARED_BASE,
        }
    }

    /// Maps a new region of `len` bytes aligned to `align` and returns its
    /// base address.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or `len` is zero.
    pub fn map_region(&mut self, name: &str, class: DataClass, len: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(len > 0, "cannot map an empty region");
        let base = round_up(self.next, align);
        self.next = base + len;
        self.vmas.push(Vma {
            name: name.to_owned(),
            class,
            base,
            len,
        });
        base
    }

    /// Returns the class of the region containing `addr`, if mapped.
    pub fn classify(&self, addr: u64) -> Option<DataClass> {
        self.vma_at(addr).map(|v| v.class)
    }

    /// Returns the region containing `addr`, if mapped.
    pub fn vma_at(&self, addr: u64) -> Option<&Vma> {
        // Regions are mapped in increasing address order; binary search on base.
        let idx = self.vmas.partition_point(|v| v.base <= addr);
        idx.checked_sub(1)
            .map(|i| &self.vmas[i])
            .filter(|v| v.contains(addr))
    }

    /// Iterates over the mapped regions in address order.
    pub fn iter(&self) -> std::slice::Iter<'_, Vma> {
        self.vmas.iter()
    }

    /// Total bytes mapped (excluding alignment gaps).
    pub fn mapped_bytes(&self) -> u64 {
        self.vmas.iter().map(|v| v.len).sum()
    }

    /// One past the highest mapped address.
    pub fn end(&self) -> u64 {
        self.next
    }
}

impl<'a> IntoIterator for &'a AddressSpace {
    type Item = &'a Vma;
    type IntoIter = std::slice::Iter<'a, Vma>;
    fn into_iter(self) -> Self::IntoIter {
        self.vmas.iter()
    }
}

fn round_up(v: u64, align: u64) -> u64 {
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let mut s = AddressSpace::new();
        let a = s.map_region("a", DataClass::BufDesc, 100, 64);
        let b = s.map_region("b", DataClass::BufLookup, 100, 64);
        let c = s.map_region("c", DataClass::Data, 8192, 8192);
        assert!(a < b && b < c);
        assert!(a + 100 <= b);
        assert_eq!(c % 8192, 0);
    }

    #[test]
    fn classify_resolves_interior_addresses() {
        let mut s = AddressSpace::new();
        let a = s.map_region("locks", DataClass::LockMgrLock, 64, 64);
        let b = s.map_region("blocks", DataClass::Data, 3 * 8192, 8192);
        assert_eq!(s.classify(a), Some(DataClass::LockMgrLock));
        assert_eq!(s.classify(a + 63), Some(DataClass::LockMgrLock));
        assert_eq!(s.classify(b + 2 * 8192), Some(DataClass::Data));
        assert_eq!(s.classify(b + 3 * 8192), None);
        assert_eq!(s.classify(0), None);
    }

    #[test]
    fn alignment_gaps_are_unmapped() {
        let mut s = AddressSpace::new();
        let a = s.map_region("small", DataClass::BufDesc, 10, 64);
        let b = s.map_region("aligned", DataClass::Data, 8192, 8192);
        // The gap between a+10 and b must classify as unmapped.
        if a + 10 < b {
            assert_eq!(s.classify(a + 10), None);
            assert_eq!(s.classify(b - 1), None);
        }
    }

    #[test]
    fn mapped_bytes_sums_regions() {
        let mut s = AddressSpace::new();
        s.map_region("a", DataClass::Data, 100, 8);
        s.map_region("b", DataClass::Index, 200, 8);
        assert_eq!(s.mapped_bytes(), 300);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_alignment() {
        AddressSpace::new().map_region("x", DataClass::Data, 8, 3);
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn rejects_empty_region() {
        AddressSpace::new().map_region("x", DataClass::Data, 0, 8);
    }
}

#[cfg(test)]
mod iter_tests {
    use super::*;

    #[test]
    fn iteration_is_in_address_order_with_names() {
        let mut s = AddressSpace::new();
        s.map_region("first", DataClass::BufDesc, 64, 64);
        s.map_region("second", DataClass::Data, 8192, 8192);
        let names: Vec<&str> = s.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["first", "second"]);
        let mut last = 0;
        for vma in &s {
            assert!(vma.base >= last);
            last = vma.base + vma.len;
        }
        assert_eq!(s.end(), last);
    }

    #[test]
    fn vma_at_returns_the_region_metadata() {
        let mut s = AddressSpace::new();
        let base = s.map_region("locks", DataClass::LockMgrLock, 64, 64);
        let vma = s.vma_at(base + 10).expect("mapped");
        assert_eq!(vma.name, "locks");
        assert!(vma.contains(base));
        assert!(!vma.contains(base + 64));
    }
}
