//! Per-process private heaps with `palloc`-style chunk reuse.

use std::collections::BTreeMap;

use crate::{private_base, PRIVATE_STRIDE};

/// Allocation granularity; every chunk is a multiple of this.
const CHUNK_ALIGN: u64 = 16;

/// A simulated private heap for one process.
///
/// Postgres95 allocates tuple slots, sort workspaces and hash tables with
/// `palloc`, which reuses freed chunks. That reuse is what gives private data
/// its temporal locality in the paper, so the heap keeps size-classed free
/// lists (LIFO, so the most recently freed — and hence cache-warmest — chunk
/// is handed out first).
///
/// # Example
///
/// ```
/// use dss_shmem::PrivateHeap;
///
/// let mut heap = PrivateHeap::new(1);
/// let a = heap.alloc(64);
/// let b = heap.alloc(64);
/// assert_ne!(a, b);
/// heap.free(b, 64);
/// assert_eq!(heap.alloc(64), b);
/// ```
#[derive(Clone, Debug)]
pub struct PrivateHeap {
    proc_id: usize,
    base: u64,
    next: u64,
    limit: u64,
    free_lists: BTreeMap<u64, Vec<u64>>,
    live_bytes: u64,
    high_water: u64,
}

impl PrivateHeap {
    /// Creates the heap for simulated process `proc_id`.
    ///
    /// # Panics
    ///
    /// Panics if `proc_id` exceeds [`crate::MAX_PROCS`].
    pub fn new(proc_id: usize) -> Self {
        let base = private_base(proc_id);
        PrivateHeap {
            proc_id,
            base,
            next: base,
            limit: base + PRIVATE_STRIDE,
            free_lists: BTreeMap::new(),
            live_bytes: 0,
            high_water: 0,
        }
    }

    /// The owning process.
    pub fn proc_id(&self) -> usize {
        self.proc_id
    }

    /// Allocates `size` bytes (rounded up to 16) and returns the chunk's
    /// address, reusing a freed chunk of the same size class when available.
    ///
    /// # Panics
    ///
    /// Panics if the private segment is exhausted (never happens for the
    /// paper's workloads) or `size` is zero.
    pub fn alloc(&mut self, size: u64) -> u64 {
        assert!(size > 0, "cannot allocate zero bytes");
        let class = size_class(size);
        self.live_bytes += class;
        self.high_water = self.high_water.max(self.live_bytes);
        if let Some(list) = self.free_lists.get_mut(&class) {
            if let Some(addr) = list.pop() {
                return addr;
            }
        }
        let addr = self.next;
        assert!(
            addr + class <= self.limit,
            "private heap exhausted for proc {}",
            self.proc_id
        );
        self.next += class;
        addr
    }

    /// Returns a chunk to its size-class free list.
    ///
    /// `size` must be the size passed to the matching [`PrivateHeap::alloc`].
    pub fn free(&mut self, addr: u64, size: u64) {
        let class = size_class(size);
        debug_assert!(
            addr >= self.base && addr + class <= self.next,
            "freeing foreign chunk"
        );
        self.live_bytes = self.live_bytes.saturating_sub(class);
        self.free_lists.entry(class).or_default().push(addr);
    }

    /// Bytes currently allocated.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Peak bytes ever allocated.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Total bytes of address space consumed (live + free-listed).
    pub fn footprint(&self) -> u64 {
        self.next - self.base
    }
}

fn size_class(size: u64) -> u64 {
    // Round small chunks to 16-byte granules and larger ones to powers of two,
    // like palloc's allocation sets; keeps the free lists short while
    // preserving address reuse.
    let granule = size.div_ceil(CHUNK_ALIGN) * CHUNK_ALIGN;
    if granule <= 256 {
        granule
    } else {
        granule.next_power_of_two()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_allocs_are_disjoint() {
        let mut h = PrivateHeap::new(0);
        let a = h.alloc(40);
        let b = h.alloc(40);
        assert!(b >= a + 48, "chunks must not overlap");
    }

    #[test]
    fn free_then_alloc_reuses_lifo() {
        let mut h = PrivateHeap::new(0);
        let a = h.alloc(100);
        let b = h.alloc(100);
        h.free(a, 100);
        h.free(b, 100);
        assert_eq!(h.alloc(100), b, "most recently freed chunk first");
        assert_eq!(h.alloc(100), a);
    }

    #[test]
    fn different_size_classes_do_not_mix() {
        let mut h = PrivateHeap::new(0);
        let a = h.alloc(16);
        h.free(a, 16);
        let b = h.alloc(160);
        assert_ne!(a, b);
    }

    #[test]
    fn accounting_tracks_live_and_peak() {
        let mut h = PrivateHeap::new(0);
        let a = h.alloc(64);
        let _b = h.alloc(64);
        assert_eq!(h.live_bytes(), 128);
        h.free(a, 64);
        assert_eq!(h.live_bytes(), 64);
        assert_eq!(h.high_water(), 128);
        assert_eq!(h.footprint(), 128);
    }

    #[test]
    fn heaps_of_distinct_procs_are_disjoint() {
        let mut h0 = PrivateHeap::new(0);
        let mut h1 = PrivateHeap::new(1);
        let a = h0.alloc(64);
        let b = h1.alloc(64);
        assert_eq!(crate::private_owner(a), Some(0));
        assert_eq!(crate::private_owner(b), Some(1));
    }

    #[test]
    fn large_sizes_round_to_power_of_two() {
        assert_eq!(size_class(300), 512);
        assert_eq!(size_class(16), 16);
        assert_eq!(size_class(17), 32);
        assert_eq!(size_class(1), 16);
    }

    #[test]
    #[should_panic(expected = "zero bytes")]
    fn zero_alloc_rejected() {
        PrivateHeap::new(0).alloc(0);
    }
}
