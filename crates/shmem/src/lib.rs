//! Emulated address spaces for the DSS workload study.
//!
//! The original study traced a real Postgres95 process with Mint, so every
//! reference carried a machine virtual address. Our engine instead allocates
//! its data structures out of an *emulated* address space and attaches the
//! resulting addresses to the references it emits. Two kinds of memory exist,
//! mirroring Postgres95's process model:
//!
//! * **Shared memory** ([`AddressSpace`]): one global region table holding the
//!   buffer blocks, buffer descriptors, lookup hash, lock-manager hash tables
//!   and spinlocks. Regions are mapped once at startup and classified with a
//!   [`DataClass`], so any address can be attributed to the data structure it
//!   belongs to.
//! * **Private heaps** ([`PrivateHeap`]): one per simulated processor, with a
//!   `palloc`-style size-classed free list so freed chunks are reused — the
//!   source of the private-data temporal locality the paper reports.
//!
//! Private *stack and static* data is never modelled: the paper's methodology
//! assumes those references always hit (its scaling correction), so they are
//! simply not emitted.
//!
//! # Example
//!
//! ```
//! use dss_shmem::{AddressSpace, PrivateHeap};
//! use dss_trace::DataClass;
//!
//! let mut shared = AddressSpace::new();
//! let blocks = shared.map_region("buffer blocks", DataClass::Data, 64 * 8192, 8192);
//! assert_eq!(shared.classify(blocks + 100), Some(DataClass::Data));
//!
//! let mut heap = PrivateHeap::new(0);
//! let a = heap.alloc(100);
//! heap.free(a, 100);
//! let b = heap.alloc(100); // reuses the freed chunk
//! assert_eq!(a, b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod heap;
mod space;

pub use heap::PrivateHeap;
pub use space::{AddressSpace, Vma};

use dss_trace::DataClass;

/// Base of the emulated shared segment.
pub const SHARED_BASE: u64 = 0x0001_0000_0000;

/// Base of the first private segment.
pub const PRIVATE_BASE: u64 = 0x0100_0000_0000;

/// Distance between consecutive processes' private segments.
pub const PRIVATE_STRIDE: u64 = 0x0010_0000_0000;

/// Maximum number of simulated processes with private segments.
pub const MAX_PROCS: usize = 64;

/// Returns the private segment base for simulated process `proc_id`.
///
/// # Panics
///
/// Panics if `proc_id >= MAX_PROCS`.
pub fn private_base(proc_id: usize) -> u64 {
    assert!(proc_id < MAX_PROCS, "proc_id {proc_id} out of range");
    PRIVATE_BASE + proc_id as u64 * PRIVATE_STRIDE
}

/// If `addr` lies in some process's private segment, returns that process id.
pub fn private_owner(addr: u64) -> Option<usize> {
    if addr < PRIVATE_BASE {
        return None;
    }
    let idx = (addr - PRIVATE_BASE) / PRIVATE_STRIDE;
    (idx < MAX_PROCS as u64).then_some(idx as usize)
}

/// Whether `addr` lies in the emulated shared segment.
pub fn is_shared_addr(addr: u64) -> bool {
    (SHARED_BASE..PRIVATE_BASE).contains(&addr)
}

/// Classifies an address as shared or private without consulting a region
/// table; used by the simulator for NUMA home-node placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Segment {
    /// The global shared segment.
    Shared,
    /// A process's private segment.
    Private(usize),
}

/// Returns which segment `addr` belongs to, if any.
pub fn segment_of(addr: u64) -> Option<Segment> {
    if is_shared_addr(addr) {
        Some(Segment::Shared)
    } else {
        private_owner(addr).map(Segment::Private)
    }
}

/// Convenience: the [`DataClass`] for anything allocated from a private heap.
pub const PRIVATE_CLASS: DataClass = DataClass::PrivHeap;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_segments_do_not_overlap_shared() {
        assert!(private_base(0) > SHARED_BASE);
        assert!(!is_shared_addr(private_base(0)));
        assert!(is_shared_addr(SHARED_BASE));
    }

    #[test]
    fn owner_roundtrip() {
        for p in [0usize, 1, 3, 63] {
            assert_eq!(private_owner(private_base(p)), Some(p));
            assert_eq!(private_owner(private_base(p) + PRIVATE_STRIDE - 1), Some(p));
        }
        assert_eq!(private_owner(SHARED_BASE), None);
    }

    #[test]
    fn segment_of_distinguishes() {
        assert_eq!(segment_of(SHARED_BASE + 10), Some(Segment::Shared));
        assert_eq!(segment_of(private_base(2) + 10), Some(Segment::Private(2)));
        assert_eq!(segment_of(0x10), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn private_base_rejects_large_ids() {
        private_base(MAX_PROCS);
    }
}
