//! Fuzz-style robustness tests for the SQL front end: arbitrary byte soup
//! and mutated TPC-D query text must produce a [`ParseError`], never a
//! panic — the parser sits on the workbench's input boundary.

use proptest::collection;
use proptest::prelude::*;

use dss_sql::{parse, parse_statement, tokenize};

/// Well-formed seeds in the workbench's dialect, mutated by the tests below.
const SEEDS: &[&str] = &[
    "select sum(l_extendedprice * l_discount) as revenue from lineitem \
     where l_shipdate >= date '1994-01-01' and l_discount between 0.05 and 0.07 \
     and l_quantity < 24",
    "select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue \
     from customer, orders, lineitem where c_custkey = o_custkey \
     and l_orderkey = o_orderkey group by l_orderkey order by revenue desc",
    "select count(*) from orders where o_orderdate < date '1995-03-15'",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary (lossily decoded) bytes never panic the tokenizer or either
    /// parser entry point.
    #[test]
    fn byte_soup_never_panics(bytes in collection::vec(any::<u8>(), 0..256)) {
        let input = String::from_utf8_lossy(&bytes);
        let _ = tokenize(&input);
        let _ = parse(&input);
        let _ = parse_statement(&input);
    }

    /// Truncating a valid query at any char boundary and splicing in a junk
    /// byte never panics (it may still parse: a cut can land on a smaller
    /// well-formed query).
    #[test]
    fn mutated_queries_never_panic(
        pick in 0usize..3,
        cut in 0usize..300,
        junk in any::<u8>(),
    ) {
        let seed = SEEDS[pick % SEEDS.len()];
        let mut mutated: String = seed.chars().take(cut).collect();
        mutated.push(junk as char);
        mutated.extend(seed.chars().skip(cut + 1));
        let _ = parse(&mutated);
        let _ = parse_statement(&mutated);
    }

    /// Deleting an arbitrary slice from a valid query never panics.
    #[test]
    fn spliced_queries_never_panic(pick in 0usize..3, at in 0usize..300, len in 1usize..40) {
        let seed = SEEDS[pick % SEEDS.len()];
        let mutated: String = seed
            .chars()
            .take(at)
            .chain(seed.chars().skip(at + len))
            .collect();
        let _ = parse(&mutated);
        let _ = parse_statement(&mutated);
    }
}

/// The unmutated seeds must parse — otherwise the mutation tests exercise
/// nothing but the error path.
#[test]
fn the_seeds_are_actually_valid() {
    for seed in SEEDS {
        parse(seed).unwrap_or_else(|e| panic!("seed `{seed}` does not parse: {e}"));
    }
}
