//! SQL front end for the emulated Postgres95.
//!
//! The HPCA'97 study codes its TPC-D queries "in the limited form of SQL
//! supported by the database system": single-block `select` statements over a
//! `from` list with conjunctive predicates, aggregates, `group by` and
//! `order by` — no nested subqueries (the paper flattens them while
//! preserving the memory access patterns). This crate implements exactly that
//! dialect:
//!
//! * [`tokenize`] — the lexer (identifiers, keywords, numeric literals in
//!   hundredths, strings, `date 'YYYY-MM-DD'`, comments),
//! * [`parse`] — a recursive-descent parser with standard precedence
//!   (`or` < `and` < `not` < comparisons/`between`/`in`/`like` < `+ -` <
//!   `* /`),
//! * [`Query`]/[`Expr`] — the AST consumed by the planner in `dss-query`.
//!
//! See [`parse`] for an example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod parser;
mod token;

pub use ast::{AggFunc, BinOp, Expr, OrderKey, ParseError, Query, SelectItem, Statement};
pub use parser::{parse, parse_statement};
pub use token::{tokenize, Keyword, Spanned, Token};
