//! Recursive-descent parser for the dialect.

use crate::ast::{AggFunc, BinOp, Expr, OrderKey, ParseError, Query, SelectItem, Statement};
use crate::token::{tokenize, Keyword, Spanned, Token};

/// Parses one `select` statement.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first token that does not fit the
/// grammar, with its byte offset.
///
/// # Example
///
/// ```
/// use dss_sql::parse;
///
/// let q = parse(
///     "select sum(l_extendedprice * l_discount) as revenue \
///      from lineitem \
///      where l_shipdate >= date '1994-01-01' \
///        and l_discount between 0.05 and 0.07",
/// )?;
/// assert_eq!(q.from, ["lineitem"]);
/// assert!(q.has_aggregates());
/// # Ok::<(), dss_sql::ParseError>(())
/// ```
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect(Token::Eof)?;
    Ok(q)
}

/// Parses one statement: `select`, `insert into … values …`, or
/// `delete from … [where …]`.
///
/// # Errors
///
/// Returns a [`ParseError`] for anything outside the dialect.
///
/// # Example
///
/// ```
/// use dss_sql::{parse_statement, Statement};
///
/// let stmt = parse_statement("delete from orders where o_orderkey = 99")?;
/// assert!(matches!(stmt, Statement::Delete { .. }));
/// # Ok::<(), dss_sql::ParseError>(())
/// ```
pub fn parse_statement(input: &str) -> Result<Statement, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = match p.peek() {
        Token::Keyword(Keyword::Select) => Statement::Select(p.query()?),
        Token::Keyword(Keyword::Insert) => p.insert()?,
        Token::Keyword(Keyword::Delete) => p.delete()?,
        other => return Err(p.err(format!("expected a statement, found {other}"))),
    };
    p.expect(Token::Eof)?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Keyword) -> bool {
        self.eat(&Token::Keyword(k))
    }

    fn expect(&mut self, t: Token) -> Result<(), ParseError> {
        if self.peek() == &t {
            self.advance();
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn expect_kw(&mut self, k: Keyword) -> Result<(), ParseError> {
        self.expect(Token::Keyword(k))
    }

    fn err(&self, message: String) -> ParseError {
        ParseError::at(self.offset(), message)
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_kw(Keyword::Select)?;
        let mut items = Vec::new();
        let star = self.eat(&Token::Star);
        if !star {
            items.push(self.select_item()?);
            while self.eat(&Token::Comma) {
                items.push(self.select_item()?);
            }
        }
        self.expect_kw(Keyword::From)?;
        let mut from = vec![self.ident()?];
        while self.eat(&Token::Comma) {
            from.push(self.ident()?);
        }
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            group_by.push(self.expr()?);
            while self.eat(&Token::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw(Keyword::Having) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw(Keyword::Desc) {
                    true
                } else {
                    self.eat_kw(Keyword::Asc);
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw(Keyword::Limit) {
            match self.advance() {
                Token::Int(n) if n >= 0 => Some(n as u64),
                other => return Err(self.err(format!("expected row count, found {other}"))),
            }
        } else {
            None
        };
        Ok(Query {
            items,
            star,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::Insert)?;
        self.expect_kw(Keyword::Into)?;
        let table = self.ident()?;
        self.expect_kw(Keyword::Values)?;
        let mut rows = Vec::new();
        loop {
            self.expect(Token::LParen)?;
            let mut row = vec![self.add_expr()?];
            while self.eat(&Token::Comma) {
                row.push(self.add_expr()?);
            }
            self.expect(Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn delete(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::Delete)?;
        self.expect_kw(Keyword::From)?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        let expr = self.expr()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    /// Precedence climbing: or < and < not < predicate < add < mul < unary.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw(Keyword::Not) {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.predicate()
        }
    }

    /// Comparisons, `between`, `in`, `like` — all at one level, non-associative.
    fn predicate(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let negated = if self.peek() == &Token::Keyword(Keyword::Not) {
            // Lookahead: `not` here must introduce between/in/like.
            matches!(
                self.tokens.get(self.pos + 1).map(|s| &s.token),
                Some(Token::Keyword(Keyword::Between))
                    | Some(Token::Keyword(Keyword::In))
                    | Some(Token::Keyword(Keyword::Like))
            ) && {
                self.advance();
                true
            }
        } else {
            false
        };
        if self.eat_kw(Keyword::Between) {
            let lo = self.add_expr()?;
            self.expect_kw(Keyword::And)?;
            let hi = self.add_expr()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if self.eat_kw(Keyword::In) {
            self.expect(Token::LParen)?;
            let mut list = vec![self.add_expr()?];
            while self.eat(&Token::Comma) {
                list.push(self.add_expr()?);
            }
            self.expect(Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw(Keyword::Like) {
            match self.advance() {
                Token::Str(pattern) => {
                    return Ok(Expr::Like {
                        expr: Box::new(lhs),
                        pattern,
                        negated,
                    })
                }
                other => return Err(self.err(format!("expected pattern string, found {other}"))),
            }
        }
        if negated {
            return Err(self.err("expected between/in/like after not".to_owned()));
        }
        let op = match self.peek() {
            Token::Eq => BinOp::Eq,
            Token::Ne => BinOp::Ne,
            Token::Lt => BinOp::Lt,
            Token::Le => BinOp::Le,
            Token::Gt => BinOp::Gt,
            Token::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.advance();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Minus) {
            let inner = self.unary_expr()?;
            return Ok(match inner {
                Expr::Int(v) => Expr::Int(-v),
                Expr::Dec(v) => Expr::Dec(-v),
                other => Expr::Binary {
                    op: BinOp::Sub,
                    lhs: Box::new(Expr::Int(0)),
                    rhs: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.advance();
                Ok(Expr::Int(v))
            }
            Token::Dec(v) => {
                self.advance();
                Ok(Expr::Dec(v))
            }
            Token::Str(s) => {
                self.advance();
                Ok(Expr::Str(s))
            }
            Token::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Token::Keyword(Keyword::Date) => {
                self.advance();
                match self.advance() {
                    Token::Str(s) => self.date_literal(&s),
                    other => Err(self.err(format!("expected date string, found {other}"))),
                }
            }
            Token::Keyword(
                k @ (Keyword::Sum | Keyword::Count | Keyword::Avg | Keyword::Min | Keyword::Max),
            ) => {
                self.advance();
                let func = match k {
                    Keyword::Sum => AggFunc::Sum,
                    Keyword::Count => AggFunc::Count,
                    Keyword::Avg => AggFunc::Avg,
                    Keyword::Min => AggFunc::Min,
                    Keyword::Max => AggFunc::Max,
                    _ => unreachable!(),
                };
                self.expect(Token::LParen)?;
                let distinct = self.eat_kw(Keyword::Distinct);
                let arg = if self.eat(&Token::Star) {
                    if func != AggFunc::Count {
                        return Err(self.err("`*` argument is only valid for count".to_owned()));
                    }
                    None
                } else {
                    Some(Box::new(self.expr()?))
                };
                self.expect(Token::RParen)?;
                Ok(Expr::Agg {
                    func,
                    arg,
                    distinct,
                })
            }
            Token::Ident(first) => {
                self.advance();
                if self.eat(&Token::Dot) {
                    let name = self.ident()?;
                    Ok(Expr::Column {
                        table: Some(first),
                        name,
                    })
                } else {
                    Ok(Expr::Column {
                        table: None,
                        name: first,
                    })
                }
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }

    fn date_literal(&mut self, s: &str) -> Result<Expr, ParseError> {
        let parts: Vec<&str> = s.split('-').collect();
        let fail = || ParseError::new(format!("malformed date literal '{s}'"));
        if parts.len() != 3 {
            return Err(fail());
        }
        let year: i32 = parts[0].parse().map_err(|_| fail())?;
        let month: u32 = parts[1].parse().map_err(|_| fail())?;
        let day: u32 = parts[2].parse().map_err(|_| fail())?;
        if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return Err(fail());
        }
        Ok(Expr::DateLit { year, month, day })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q6_shape() {
        let q = parse(
            "select sum(l_extendedprice * l_discount) as revenue
             from lineitem
             where l_shipdate >= date '1994-01-01'
               and l_shipdate < date '1995-01-01'
               and l_discount between 0.05 and 0.07
               and l_quantity < 24",
        )
        .unwrap();
        assert_eq!(q.from, ["lineitem"]);
        assert_eq!(q.items.len(), 1);
        assert_eq!(q.items[0].alias.as_deref(), Some("revenue"));
        let conjuncts = q.where_clause.as_ref().unwrap().conjuncts().len();
        assert_eq!(conjuncts, 4);
        assert!(q.group_by.is_empty());
        assert!(q.order_by.is_empty());
    }

    #[test]
    fn parses_q3_shape() {
        let q = parse(
            "select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue,
                    o_orderdate, o_shippriority
             from customer, orders, lineitem
             where c_mktsegment = 'BUILDING'
               and c_custkey = o_custkey
               and l_orderkey = o_orderkey
               and o_orderdate < date '1995-03-15'
               and l_shipdate > date '1995-03-15'
             group by l_orderkey, o_orderdate, o_shippriority
             order by revenue desc, o_orderdate",
        )
        .unwrap();
        assert_eq!(q.from, ["customer", "orders", "lineitem"]);
        assert_eq!(q.group_by.len(), 3);
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].desc);
        assert!(!q.order_by[1].desc);
        assert!(q.has_aggregates());
    }

    #[test]
    fn parses_in_list_and_or() {
        let q = parse(
            "select count(*) from lineitem
             where l_shipmode in ('MAIL', 'SHIP') or l_shipmode = 'AIR'",
        )
        .unwrap();
        let w = q.where_clause.unwrap();
        assert!(matches!(w, Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn parses_not_like_and_not_in() {
        let q = parse(
            "select count(*) from part
             where p_type not like 'MEDIUM%' and p_size not in (1, 2, 3) and not p_size = 9",
        )
        .unwrap();
        let w = q.where_clause.unwrap();
        let parts = w.conjuncts();
        assert!(matches!(parts[0], Expr::Like { negated: true, .. }));
        assert!(matches!(parts[1], Expr::InList { negated: true, .. }));
        assert!(matches!(parts[2], Expr::Not(_)));
    }

    #[test]
    fn operator_precedence_mul_before_add_before_compare() {
        let q = parse("select 1 from t where a + b * 2 < c").unwrap();
        match q.where_clause.unwrap() {
            Expr::Binary {
                op: BinOp::Lt, lhs, ..
            } => match *lhs {
                Expr::Binary {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("expected add, got {other:?}"),
            },
            other => panic!("expected comparison, got {other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let q = parse("select 1 from t where a = 1 or b = 2 and c = 3").unwrap();
        assert!(matches!(
            q.where_clause.unwrap(),
            Expr::Binary { op: BinOp::Or, .. }
        ));
    }

    #[test]
    fn parenthesized_or_groups() {
        let q = parse("select 1 from t where (a = 1 or b = 2) and c = 3").unwrap();
        let w = q.where_clause.unwrap();
        let parts = w.conjuncts();
        assert_eq!(parts.len(), 2);
        assert!(matches!(parts[0], Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn count_star_and_distinct() {
        let q = parse("select count(*), count(distinct c_custkey) from customer").unwrap();
        assert!(matches!(
            q.items[0].expr,
            Expr::Agg {
                func: AggFunc::Count,
                arg: None,
                distinct: false
            }
        ));
        assert!(matches!(
            q.items[1].expr,
            Expr::Agg {
                func: AggFunc::Count,
                arg: Some(_),
                distinct: true
            }
        ));
    }

    #[test]
    fn qualified_columns_parse() {
        let q = parse("select customer.c_name from customer where customer.c_custkey = 7").unwrap();
        assert_eq!(q.items[0].expr, Expr::qcol("customer", "c_name"));
    }

    #[test]
    fn negative_literals_fold() {
        let q = parse("select -5, -0.07 from t").unwrap();
        assert_eq!(q.items[0].expr, Expr::Int(-5));
        assert_eq!(q.items[1].expr, Expr::Dec(-7));
    }

    #[test]
    fn bad_date_rejected() {
        assert!(parse("select 1 from t where a = date '1995-13-01'").is_err());
        assert!(parse("select 1 from t where a = date 'notadate'").is_err());
    }

    #[test]
    fn star_only_for_count() {
        assert!(parse("select sum(*) from t").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("select 1 from t where a = 1 order by a asc garbage").is_err());
    }

    #[test]
    fn missing_from_rejected_with_offset() {
        let err = parse("select 1").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }
}

#[cfg(test)]
mod statement_tests {
    use super::*;
    use crate::Statement;

    #[test]
    fn insert_parses_multi_row_values() {
        let stmt =
            parse_statement("insert into region values (5, 'A', 'x'), (6, 'B', date '1995-01-01')")
                .unwrap();
        match stmt {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "region");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].len(), 3);
                assert!(matches!(rows[1][2], Expr::DateLit { .. }));
            }
            other => panic!("expected insert, got {other:?}"),
        }
    }

    #[test]
    fn delete_with_and_without_where() {
        assert!(matches!(
            parse_statement("delete from orders").unwrap(),
            Statement::Delete {
                where_clause: None,
                ..
            }
        ));
        assert!(matches!(
            parse_statement("delete from orders where o_orderkey = 3").unwrap(),
            Statement::Delete {
                where_clause: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn select_star_having_limit() {
        let q = parse("select * from region limit 3").unwrap();
        assert!(q.star);
        assert!(q.items.is_empty());
        assert_eq!(q.limit, Some(3));

        let q = parse(
            "select c_nationkey, count(*) from customer \
             group by c_nationkey having count(*) > 5 order by c_nationkey limit 10",
        )
        .unwrap();
        assert!(q.having.is_some());
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.group_by.len(), 1);
    }

    #[test]
    fn statement_entrypoint_accepts_select() {
        assert!(matches!(
            parse_statement("select 1 from region").unwrap(),
            Statement::Select(_)
        ));
    }

    #[test]
    fn bad_limit_rejected() {
        assert!(parse("select 1 from t limit banana").is_err());
    }

    #[test]
    fn update_keyword_is_not_a_statement() {
        assert!(parse_statement("update region").is_err());
    }
}
