//! The abstract syntax tree of the dialect.

use std::fmt;

/// A binary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

impl BinOp {
    /// Whether this operator compares values (yields a boolean).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether this operator is a boolean connective.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// An aggregate function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// `sum(expr)`
    Sum,
    /// `count(*)` or `count(expr)`
    Count,
    /// `avg(expr)`
    Avg,
    /// `min(expr)`
    Min,
    /// `max(expr)`
    Max,
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A column reference, optionally qualified with a table name.
    Column {
        /// Qualifying table, if written.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Integer literal.
    Int(i64),
    /// Decimal literal in hundredths.
    Dec(i64),
    /// String literal.
    Str(String),
    /// `date 'YYYY-MM-DD'` literal.
    DateLit {
        /// Year.
        year: i32,
        /// Month (1–12).
        month: u32,
        /// Day (1–31).
        day: u32,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `not expr`.
    Not(Box<Expr>),
    /// Aggregate call; `arg` is `None` for `count(*)`.
    Agg {
        /// The function.
        func: AggFunc,
        /// Argument (`None` only for `count(*)`).
        arg: Option<Box<Expr>>,
        /// `distinct` qualifier.
        distinct: bool,
    },
    /// `expr [not] between lo and hi`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// Negated form.
        negated: bool,
    },
    /// `expr [not] in (e1, e2, …)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// Negated form.
        negated: bool,
    },
    /// `expr [not] like 'pattern'` with `%`/`_` wildcards.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern.
        pattern: String,
        /// Negated form.
        negated: bool,
    },
}

impl Expr {
    /// Convenience constructor for a bare column.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            table: None,
            name: name.to_owned(),
        }
    }

    /// Convenience constructor for a qualified column.
    pub fn qcol(table: &str, name: &str) -> Expr {
        Expr::Column {
            table: Some(table.to_owned()),
            name: name.to_owned(),
        }
    }

    /// Splits a conjunction into its top-level conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                let mut v = lhs.conjuncts();
                v.extend(rhs.conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// Whether any aggregate call appears in this expression.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Binary { lhs, rhs, .. } => lhs.contains_aggregate() || rhs.contains_aggregate(),
            Expr::Not(e) => e.contains_aggregate(),
            Expr::Between { expr, lo, hi, .. } => {
                expr.contains_aggregate() || lo.contains_aggregate() || hi.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Like { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }
    }

    /// Collects every column referenced in this expression.
    pub fn columns(&self) -> Vec<(&Option<String>, &str)> {
        let mut out = Vec::new();
        self.walk_columns(&mut out);
        out
    }

    fn walk_columns<'a>(&'a self, out: &mut Vec<(&'a Option<String>, &'a str)>) {
        match self {
            Expr::Column { table, name } => out.push((table, name)),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk_columns(out);
                rhs.walk_columns(out);
            }
            Expr::Not(e) => e.walk_columns(out),
            Expr::Agg { arg: Some(a), .. } => a.walk_columns(out),
            Expr::Agg { arg: None, .. } => {}
            Expr::Between { expr, lo, hi, .. } => {
                expr.walk_columns(out);
                lo.walk_columns(out);
                hi.walk_columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk_columns(out);
                for e in list {
                    e.walk_columns(out);
                }
            }
            Expr::Like { expr, .. } => expr.walk_columns(out),
            _ => {}
        }
    }
}

/// One `select` output item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: Expr,
    /// Optional `as alias`.
    pub alias: Option<String>,
}

/// One `order by` key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrderKey {
    /// The sort expression.
    pub expr: Expr,
    /// `true` for descending order.
    pub desc: bool,
}

/// A parsed `select` statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    /// Projected items (empty when `star` is set).
    pub items: Vec<SelectItem>,
    /// `select *`.
    pub star: bool,
    /// Tables in the `from` list, in written order.
    pub from: Vec<String>,
    /// The `where` conjunction, if any.
    pub where_clause: Option<Expr>,
    /// `group by` expressions.
    pub group_by: Vec<Expr>,
    /// The `having` predicate (evaluated over the grouped output).
    pub having: Option<Expr>,
    /// `order by` keys.
    pub order_by: Vec<OrderKey>,
    /// `limit` row count.
    pub limit: Option<u64>,
}

impl Query {
    /// Whether the query computes any aggregate.
    pub fn has_aggregates(&self) -> bool {
        self.items.iter().any(|i| i.expr.contains_aggregate())
    }
}

/// A top-level SQL statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Statement {
    /// A `select` query.
    Select(Query),
    /// An `insert into <table> values (…), (…)` statement (literal rows).
    Insert {
        /// Target table.
        table: String,
        /// Literal rows, one `Vec<Expr>` per row in schema column order.
        rows: Vec<Vec<Expr>>,
    },
    /// A `delete from <table> [where …]` statement.
    Delete {
        /// Target table.
        table: String,
        /// Optional predicate; `None` empties the table.
        where_clause: Option<Expr>,
    },
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    offset: Option<usize>,
    message: String,
}

impl ParseError {
    /// Creates an error at a byte offset.
    pub fn at(offset: usize, message: String) -> Self {
        ParseError {
            offset: Some(offset),
            message,
        }
    }

    /// Creates an error without a position.
    pub fn new(message: String) -> Self {
        ParseError {
            offset: None,
            message,
        }
    }

    /// Byte offset of the failure, if known.
    pub fn offset(&self) -> Option<usize> {
        self.offset
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "parse error at byte {off}: {}", self.message),
            None => write!(f, "parse error: {}", self.message),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(Expr::col("a")),
                rhs: Box::new(Expr::col("b")),
            }),
            rhs: Box::new(Expr::col("c")),
        };
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn or_is_a_single_conjunct() {
        let e = Expr::Binary {
            op: BinOp::Or,
            lhs: Box::new(Expr::col("a")),
            rhs: Box::new(Expr::col("b")),
        };
        assert_eq!(e.conjuncts().len(), 1);
    }

    #[test]
    fn aggregate_detection_descends() {
        let e = Expr::Binary {
            op: BinOp::Mul,
            lhs: Box::new(Expr::Agg {
                func: AggFunc::Sum,
                arg: Some(Box::new(Expr::col("x"))),
                distinct: false,
            }),
            rhs: Box::new(Expr::Int(2)),
        };
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn columns_are_collected() {
        let e = Expr::Between {
            expr: Box::new(Expr::qcol("lineitem", "l_discount")),
            lo: Box::new(Expr::Dec(4)),
            hi: Box::new(Expr::Dec(6)),
            negated: false,
        };
        let cols = e.columns();
        assert_eq!(cols.len(), 1);
        assert_eq!(cols[0].1, "l_discount");
    }

    #[test]
    fn comparison_and_logical_classification() {
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::Eq.is_logical());
    }
}
