//! The SQL lexer.

use std::fmt;

use crate::ParseError;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier or unreserved word (lower-cased).
    Ident(String),
    /// Reserved keyword (lower-cased).
    Keyword(Keyword),
    /// Integer literal.
    Int(i64),
    /// Decimal literal in hundredths (two digits of scale).
    Dec(i64),
    /// Single-quoted string literal.
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Keyword(k) => write!(f, "keyword `{k:?}`"),
            Token::Int(v) => write!(f, "integer `{v}`"),
            Token::Dec(v) => write!(f, "decimal `{}.{:02}`", v / 100, (v % 100).abs()),
            Token::Str(s) => write!(f, "string '{s}'"),
            Token::Comma => f.write_str("`,`"),
            Token::LParen => f.write_str("`(`"),
            Token::RParen => f.write_str("`)`"),
            Token::Dot => f.write_str("`.`"),
            Token::Star => f.write_str("`*`"),
            Token::Plus => f.write_str("`+`"),
            Token::Minus => f.write_str("`-`"),
            Token::Slash => f.write_str("`/`"),
            Token::Eq => f.write_str("`=`"),
            Token::Ne => f.write_str("`<>`"),
            Token::Lt => f.write_str("`<`"),
            Token::Le => f.write_str("`<=`"),
            Token::Gt => f.write_str("`>`"),
            Token::Ge => f.write_str("`>=`"),
            Token::Eof => f.write_str("end of input"),
        }
    }
}

/// Reserved words of the dialect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
// The variant names are the SQL keywords themselves; per-variant docs would
// repeat each name with no added information.
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    Order,
    By,
    As,
    And,
    Or,
    Not,
    In,
    Between,
    Like,
    Asc,
    Desc,
    Date,
    Interval,
    Sum,
    Count,
    Avg,
    Min,
    Max,
    Distinct,
    Insert,
    Into,
    Values,
    Delete,
    Having,
    Limit,
}

fn keyword_of(word: &str) -> Option<Keyword> {
    use Keyword::*;
    Some(match word {
        "select" => Select,
        "from" => From,
        "where" => Where,
        "group" => Group,
        "order" => Order,
        "by" => By,
        "as" => As,
        "and" => And,
        "or" => Or,
        "not" => Not,
        "in" => In,
        "between" => Between,
        "like" => Like,
        "asc" => Asc,
        "desc" => Desc,
        "date" => Date,
        "interval" => Interval,
        "sum" => Sum,
        "count" => Count,
        "avg" => Avg,
        "min" => Min,
        "max" => Max,
        "distinct" => Distinct,
        "insert" => Insert,
        "into" => Into,
        "values" => Values,
        "delete" => Delete,
        "having" => Having,
        "limit" => Limit,
        _ => return None,
    })
}

/// A token plus its byte offset in the source, for error reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

/// Tokenizes `input`, returning the token stream terminated by [`Token::Eof`].
///
/// # Errors
///
/// Returns a [`ParseError`] for unterminated strings, malformed numbers, or
/// unexpected characters.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => push(&mut out, Token::Comma, start, &mut i),
            '(' => push(&mut out, Token::LParen, start, &mut i),
            ')' => push(&mut out, Token::RParen, start, &mut i),
            '.' => push(&mut out, Token::Dot, start, &mut i),
            '*' => push(&mut out, Token::Star, start, &mut i),
            '+' => push(&mut out, Token::Plus, start, &mut i),
            '-' => push(&mut out, Token::Minus, start, &mut i),
            '/' => push(&mut out, Token::Slash, start, &mut i),
            '=' => push(&mut out, Token::Eq, start, &mut i),
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Spanned {
                        token: Token::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::at(start, "unexpected `!`".to_owned()));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Spanned {
                        token: Token::Le,
                        offset: start,
                    });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Spanned {
                        token: Token::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    push(&mut out, Token::Lt, start, &mut i);
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Spanned {
                        token: Token::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    push(&mut out, Token::Gt, start, &mut i);
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError::at(
                            start,
                            "unterminated string literal".to_owned(),
                        ));
                    }
                    if bytes[i] == b'\'' {
                        // Doubled quote is an escaped quote.
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                out.push(Spanned {
                    token: Token::Str(s),
                    offset: start,
                });
            }
            '0'..='9' => {
                let mut whole = 0i64;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    whole = whole
                        .checked_mul(10)
                        .and_then(|w| w.checked_add((bytes[i] - b'0') as i64))
                        .ok_or_else(|| {
                            ParseError::at(start, "numeric literal overflows".to_owned())
                        })?;
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && bytes[i + 1].is_ascii_digit()
                {
                    i += 1;
                    let mut frac = 0i64;
                    let mut digits = 0;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        if digits < 2 {
                            frac = frac * 10 + (bytes[i] - b'0') as i64;
                            digits += 1;
                        }
                        i += 1;
                    }
                    if digits == 1 {
                        frac *= 10;
                    }
                    out.push(Spanned {
                        token: Token::Dec(whole * 100 + frac),
                        offset: start,
                    });
                } else {
                    out.push(Spanned {
                        token: Token::Int(whole),
                        offset: start,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut word = String::new();
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    word.push((bytes[i] as char).to_ascii_lowercase());
                    i += 1;
                }
                match keyword_of(&word) {
                    Some(k) => out.push(Spanned {
                        token: Token::Keyword(k),
                        offset: start,
                    }),
                    None => out.push(Spanned {
                        token: Token::Ident(word),
                        offset: start,
                    }),
                }
            }
            other => {
                return Err(ParseError::at(
                    start,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    out.push(Spanned {
        token: Token::Eof,
        offset: input.len(),
    });
    Ok(out)
}

fn push(out: &mut Vec<Spanned>, token: Token, start: usize, i: &mut usize) {
    out.push(Spanned {
        token,
        offset: start,
    });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            toks("SELECT select SeLeCt"),
            vec![
                Token::Keyword(Keyword::Select),
                Token::Keyword(Keyword::Select),
                Token::Keyword(Keyword::Select),
                Token::Eof
            ]
        );
    }

    #[test]
    fn numbers_lex_to_int_or_hundredths() {
        assert_eq!(toks("42"), vec![Token::Int(42), Token::Eof]);
        assert_eq!(toks("0.05"), vec![Token::Dec(5), Token::Eof]);
        assert_eq!(toks("12.3"), vec![Token::Dec(1230), Token::Eof]);
        assert_eq!(toks("12.345"), vec![Token::Dec(1234), Token::Eof]);
    }

    #[test]
    fn strings_support_escaped_quotes() {
        assert_eq!(toks("'a''b'"), vec![Token::Str("a'b".into()), Token::Eof]);
        assert_eq!(
            toks("'REG AIR'"),
            vec![Token::Str("REG AIR".into()), Token::Eof]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= > >= = <> !="),
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("select -- comment\n 1"),
            vec![Token::Keyword(Keyword::Select), Token::Int(1), Token::Eof]
        );
    }

    #[test]
    fn qualified_names_lex_with_dot() {
        assert_eq!(
            toks("customer.c_custkey"),
            vec![
                Token::Ident("customer".into()),
                Token::Dot,
                Token::Ident("c_custkey".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        let err = tokenize("select 'oops").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn unexpected_character_errors_with_offset() {
        let err = tokenize("select #").unwrap_err();
        assert_eq!(err.offset(), Some(7));
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    fn toks2(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(toks2(""), vec![Token::Eof]);
        assert_eq!(toks2("   \n\t  "), vec![Token::Eof]);
        assert_eq!(toks2("-- only a comment"), vec![Token::Eof]);
    }

    #[test]
    fn adjacent_operators_do_not_merge_wrongly() {
        assert_eq!(
            toks2("a<=b"),
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into()),
                Token::Eof
            ]
        );
        assert_eq!(
            toks2("1-2"),
            vec![Token::Int(1), Token::Minus, Token::Int(2), Token::Eof]
        );
    }

    #[test]
    fn identifiers_with_underscores_and_digits() {
        assert_eq!(
            toks2("l_shipdate x2 _leading"),
            vec![
                Token::Ident("l_shipdate".into()),
                Token::Ident("x2".into()),
                Token::Ident("_leading".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn numeric_overflow_is_reported() {
        assert!(tokenize("99999999999999999999999").is_err());
    }

    #[test]
    fn dot_after_number_without_digit_is_separate() {
        // `1.` with no following digit: Int then Dot.
        assert_eq!(toks2("1 ."), vec![Token::Int(1), Token::Dot, Token::Eof]);
    }

    #[test]
    fn empty_string_literal() {
        assert_eq!(toks2("''"), vec![Token::Str(String::new()), Token::Eof]);
    }
}
