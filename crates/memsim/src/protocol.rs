//! The pure coherence-protocol transition kernel.
//!
//! Everything the MSI/MESI directory protocol *decides* — who gets
//! invalidated, who downgrades, whether a fill installs Shared or Exclusive,
//! how a directory entry changes — lives here as side-effect-free functions
//! over [`DirEntry`] and per-node [`LineState`]s. The simulator
//! ([`crate::Machine`]) applies these decisions to its caches, latencies, and
//! statistics; the `dss-check model` pass drives the very same functions
//! through [`step`] to enumerate the protocol's entire reachable state space
//! over small configurations. One transition table, two consumers — the
//! model checker cannot drift from the machine it vouches for.
//!
//! Three layers, from innermost out:
//!
//! * **Directory transforms** ([`dir_read`], [`dir_write`],
//!   [`dir_exclusive`], [`dir_drop`]) — pure `DirEntry -> DirEntry` steps.
//!   [`crate::Directory`]'s `record_*` methods delegate to them.
//! * **Transaction decisions** ([`Kernel::read_miss`],
//!   [`Kernel::write_transaction`]) — allocation-free structs the machine's
//!   miss paths consume for downgrade targets, hop shapes, and install
//!   states.
//! * **The model relation** ([`ProtocolState`], [`Op`], [`Kernel::step`]) —
//!   whole-line states over up to [`MAX_MODEL_NODES`] nodes, stepped one
//!   memory operation at a time, with the data-value invariant tracked as a
//!   per-copy freshness bit (an abstraction of symbolic write tokens: only
//!   "holds the latest token" matters, so the state space stays finite).
//!
//! [`check_line`] and [`check_data_value`] are the invariant definitions
//! themselves — [`crate::Machine::verify_line`] and the model checker's BFS
//! ([`explore`]) both call them, so the runtime observer and the exhaustive
//! checker enforce literally the same rules. [`explore`] returns violations
//! as minimal replayable event sequences from the reset state.
//!
//! [`KernelFault`] compiles two deliberate transition-table bugs for the
//! fault-injection campaign (`protocol.kernel.*` sites): the model pass must
//! detect and classify both, proving the checker has teeth.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::cache::LineState;
use crate::config::Protocol;
use crate::directory::DirEntry;
// Rule strings live in `crate::rules` (the one home for every coherence
// rule literal); re-exported here so `protocol::RULE_*` paths keep working.
pub use crate::rules::{
    RULE_NO_QUIESCENCE, RULE_OWNER_NO_COPY, RULE_SHARED_NOT_IN_MASK, RULE_STALE_COPY,
    RULE_STALE_MEMORY, RULE_STRAY_SHARER, RULE_TWO_WRITERS, RULE_WRITABLE_COEXISTS,
    RULE_WRITABLE_NOT_OWNER,
};

// --- directory transforms ----------------------------------------------------

/// A read by `node`: the node joins the sharers; a recorded owner (being
/// downgraded by the caller) folds into the sharer mask.
pub fn dir_read(entry: DirEntry, node: usize) -> DirEntry {
    let mut sharers = entry.sharers;
    if let Some(owner) = entry.owner {
        sharers |= 1 << owner;
    }
    sharers |= 1 << node;
    DirEntry {
        sharers,
        owner: None,
    }
}

/// A write by `node`: returns the new entry (exclusively owned by `node`)
/// and the bitmask of nodes whose copies must be invalidated.
pub fn dir_write(entry: DirEntry, node: usize) -> (DirEntry, u64) {
    let mut invalidate = entry.sharers;
    if let Some(owner) = entry.owner {
        invalidate |= 1 << owner;
    }
    invalidate &= !(1u64 << node);
    (
        DirEntry {
            sharers: 0,
            owner: Some(node),
        },
        invalidate,
    )
}

/// An exclusive-clean installation by `node` (MESI): the node becomes owner
/// without invalidations. The caller has verified the line was uncached.
pub fn dir_exclusive(entry: DirEntry, node: usize) -> DirEntry {
    DirEntry {
        sharers: entry.sharers,
        owner: Some(node),
    }
}

/// `node` dropped its copy (eviction or invalidation): it leaves the sharer
/// mask, and its ownership — if it held any — is cleared.
pub fn dir_drop(entry: DirEntry, node: usize) -> DirEntry {
    DirEntry {
        sharers: entry.sharers & !(1u64 << node),
        owner: if entry.owner == Some(node) {
            None
        } else {
            entry.owner
        },
    }
}

// --- invariant definitions ---------------------------------------------------

/// Checks the directory-protocol invariants for one line: `caches[i]` is
/// node `i`'s cached state (its L2 state, for the machine), `entry` the
/// directory's view. Allocation-free; rules fire in a fixed order, so a
/// given corruption always classifies the same way.
///
/// # Errors
///
/// Returns the first violated rule (one of the `RULE_*` constants).
pub fn check_line(caches: &[Option<LineState>], entry: DirEntry) -> Result<(), &'static str> {
    let mut writable_holder: Option<usize> = None;
    let mut copies = 0u64;
    for (id, state) in caches.iter().enumerate() {
        if state.is_some() {
            copies |= 1 << id;
        }
        if let Some(LineState::Exclusive | LineState::Modified) = state {
            if writable_holder.is_some() {
                return Err(RULE_TWO_WRITERS);
            }
            writable_holder = Some(id);
            if entry.owner != Some(id) {
                return Err(RULE_WRITABLE_NOT_OWNER);
            }
        }
        if *state == Some(LineState::Shared)
            && entry.sharers & (1 << id) == 0
            && entry.owner != Some(id)
        {
            return Err(RULE_SHARED_NOT_IN_MASK);
        }
    }
    if let Some(owner) = entry.owner {
        if writable_holder.is_none() && copies & (1 << owner) == 0 {
            // The recorded owner evicted or never held the line; a stale
            // owner would silently absorb writes that should invalidate.
            return Err(RULE_OWNER_NO_COPY);
        }
    }
    // Evictions inform the directory (record_drop), so the mask is exact: a
    // stray sharer bit means an invalidation went to — or a write will wait
    // on — a node that holds nothing.
    if entry.sharers & !copies != 0 {
        return Err(RULE_STRAY_SHARER);
    }
    if writable_holder.is_some() && copies.count_ones() > 1 {
        return Err(RULE_WRITABLE_COEXISTS);
    }
    Ok(())
}

/// Checks the data-value invariant of a model state: every cached copy is
/// fresh (holds the latest write token), and memory is fresh whenever no
/// Modified copy exists to supply the value instead.
///
/// # Errors
///
/// Returns the violated rule.
pub fn check_data_value(s: &ProtocolState, nprocs: usize) -> Result<(), &'static str> {
    let mut modified = false;
    for id in 0..nprocs.min(MAX_MODEL_NODES) {
        if let Some(state) = s.caches[id] {
            if s.fresh & (1 << id) == 0 {
                return Err(RULE_STALE_COPY);
            }
            modified |= state == LineState::Modified;
        }
    }
    if !s.mem_fresh && !modified {
        return Err(RULE_STALE_MEMORY);
    }
    Ok(())
}

// --- the model relation ------------------------------------------------------

/// Upper bound on the node count the model state carries (the conformance
/// tests go to 8 processors; exhaustive exploration uses 2–4).
pub const MAX_MODEL_NODES: usize = 8;

/// Whole-protocol state of one memory line: each node's cached state, the
/// directory entry, and the data-value abstraction — `fresh` bit `i` means
/// node `i`'s copy holds the latest written value, `mem_fresh` that memory
/// does. A symbolic write token would make the space infinite; only
/// "latest or not" is observable, so a bit per copy suffices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProtocolState {
    /// Per-node cached state (`None` = not cached).
    pub caches: [Option<LineState>; MAX_MODEL_NODES],
    /// The directory's view of the line.
    pub entry: DirEntry,
    /// Bit `i`: node `i`'s copy holds the latest written value.
    pub fresh: u8,
    /// Memory holds the latest written value.
    pub mem_fresh: bool,
}

impl ProtocolState {
    /// The reset state: nothing cached, empty directory entry, memory
    /// current.
    pub fn reset() -> Self {
        ProtocolState {
            caches: [None; MAX_MODEL_NODES],
            entry: DirEntry::default(),
            fresh: 0,
            mem_fresh: true,
        }
    }

    /// Whether this is the stable drained state over `nprocs` nodes: no
    /// cached copies, an empty directory entry, and current memory.
    pub fn is_quiescent(&self, nprocs: usize) -> bool {
        (0..nprocs.min(MAX_MODEL_NODES)).all(|n| self.caches[n].is_none())
            && self.entry == DirEntry::default()
            && self.mem_fresh
    }

    /// Clears freshness bits of nodes that cache nothing (don't-care bits,
    /// normalized away so equal protocol states hash equally).
    fn normalize(&mut self) {
        for (i, state) in self.caches.iter().enumerate() {
            if state.is_none() {
                self.fresh &= !(1u8 << i);
            }
        }
    }
}

impl Default for ProtocolState {
    fn default() -> Self {
        ProtocolState::reset()
    }
}

/// One memory operation on one line by one node — the alphabet the model
/// relation is closed under. `Prefetch` is distinct from `Read` because the
/// machine's simple prefetcher skips remotely-owned lines and always
/// installs Shared (never a MESI Exclusive grant).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// A load by `node`.
    Read {
        /// Issuing node.
        node: usize,
    },
    /// A store by `node`.
    Write {
        /// Issuing node.
        node: usize,
    },
    /// `node` evicts its copy (replacement).
    Evict {
        /// Evicting node.
        node: usize,
    },
    /// A background prefetch into `node`.
    Prefetch {
        /// Prefetching node.
        node: usize,
    },
}

impl Op {
    /// The node issuing the operation.
    pub fn node(self) -> usize {
        match self {
            Op::Read { node } | Op::Write { node } | Op::Evict { node } | Op::Prefetch { node } => {
                node
            }
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read { node } => write!(f, "P{node} Read"),
            Op::Write { node } => write!(f, "P{node} Write"),
            Op::Evict { node } => write!(f, "P{node} Evict"),
            Op::Prefetch { node } => write!(f, "P{node} Prefetch"),
        }
    }
}

/// A coherence-visible consequence of a [`Kernel::step`], in protocol order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoherenceAction {
    /// `node`'s copy is invalidated by a write transaction.
    Invalidate {
        /// Node losing its copy.
        node: usize,
    },
    /// `node`'s writable copy downgrades to Shared for a remote read.
    Downgrade {
        /// Node being downgraded.
        node: usize,
    },
    /// `node`'s dirty copy is written back to memory.
    WriteBack {
        /// Node supplying the data.
        node: usize,
    },
    /// The line installs at `node` in `state`.
    Fill {
        /// Node receiving the fill.
        node: usize,
        /// Installed state.
        state: LineState,
    },
}

/// A deliberate transition-table bug, for the fault-injection campaign. The
/// faults live in [`Kernel`]'s model path only — the free directory
/// transforms the simulator routes through stay correct.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelFault {
    /// A store to a Shared copy skips the invalidation round, as if the
    /// copy were Exclusive — the silent-upgrade rule applied under MSI,
    /// where it is never legal.
    SilentUpgradeMsi,
    /// An eviction forgets to clear the evicting node's ownership: the
    /// directory keeps pointing at a node that caches nothing.
    StaleOwner,
}

/// The transition kernel: a protocol variant plus (for the fault campaign)
/// an optional deliberate bug. All methods are pure — the same inputs
/// always produce the same decisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Kernel {
    protocol: Protocol,
    fault: Option<KernelFault>,
}

/// The kernel's decision for a read that missed both private caches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadMiss {
    /// Remote owner whose copy downgrades to Shared before the fill.
    pub downgrade: Option<usize>,
    /// The data is forwarded from a dirty remote owner (the 3-hop
    /// transaction shape when the home is a third node).
    pub dirty_forward: bool,
    /// State the requester installs (Exclusive for a MESI grant on an
    /// uncached line, Shared otherwise).
    pub install: LineState,
}

/// The kernel's decision for a store that needs a directory transaction
/// (the requester holds the line Shared, or not at all).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteMiss {
    /// Nodes whose copies the home invalidates.
    pub invalidate: u64,
    /// The line was owned by another node (3-hop shape on a full miss).
    pub remote_owner: bool,
    /// The directory entry after the transaction.
    pub entry: DirEntry,
}

impl Kernel {
    /// A correct kernel for `protocol`.
    pub fn new(protocol: Protocol) -> Self {
        Kernel {
            protocol,
            fault: None,
        }
    }

    /// A kernel with `fault` compiled into its transition table, for the
    /// fault-injection campaign.
    pub fn with_fault(protocol: Protocol, fault: KernelFault) -> Self {
        Kernel {
            protocol,
            fault: Some(fault),
        }
    }

    /// The protocol variant this kernel implements.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Decides a read miss: `entry` is the directory's view, `node` the
    /// requester, `owner_dirty` whether a remote owner's copy is Modified
    /// (the caller reads this from the owning cache). Allocation-free.
    pub fn read_miss(&self, entry: DirEntry, node: usize, owner_dirty: bool) -> ReadMiss {
        let remote_owner = match entry.owner {
            Some(owner) if owner != node => Some(owner),
            _ => None,
        };
        let install =
            if self.protocol == Protocol::Mesi && entry.owner.is_none() && entry.sharers == 0 {
                LineState::Exclusive
            } else {
                LineState::Shared
            };
        ReadMiss {
            downgrade: remote_owner,
            dirty_forward: remote_owner.is_some() && owner_dirty,
            install,
        }
    }

    /// Decides a store's directory transaction: who to invalidate, whether a
    /// remote owner makes it 3-hop, and the entry afterwards.
    /// Allocation-free.
    pub fn write_transaction(&self, entry: DirEntry, node: usize) -> WriteMiss {
        let remote_owner = matches!(entry.owner, Some(owner) if owner != node);
        let (next, invalidate) = dir_write(entry, node);
        WriteMiss {
            invalidate,
            remote_owner,
            entry: next,
        }
    }

    /// [`dir_drop`] with this kernel's fault applied: the stale-owner bug
    /// keeps the evicting node's ownership on the books.
    fn dir_drop(&self, entry: DirEntry, node: usize) -> DirEntry {
        let mut next = dir_drop(entry, node);
        if self.fault == Some(KernelFault::StaleOwner) && entry.owner == Some(node) {
            next.owner = entry.owner;
        }
        next
    }

    /// Applies one memory operation to a line's protocol state, returning
    /// the successor state and the coherence actions the transition implies.
    /// This is the model relation the checker explores; the simulator takes
    /// the same decisions through [`Kernel::read_miss`],
    /// [`Kernel::write_transaction`], and the directory transforms.
    pub fn step(&self, s: ProtocolState, op: Op) -> (ProtocolState, Vec<CoherenceAction>) {
        let mut next = s;
        let mut actions = Vec::new();
        match op {
            Op::Read { node } => {
                if next.caches[node].is_some() {
                    return (next, actions); // hit: no coherence transaction
                }
                let owner_dirty = match s.entry.owner {
                    Some(owner) if owner != node => s.caches[owner] == Some(LineState::Modified),
                    _ => false,
                };
                let rm = self.read_miss(s.entry, node, owner_dirty);
                if let Some(owner) = rm.downgrade {
                    if let Some(state) = next.caches[owner] {
                        if state.dirty() {
                            // The forwarded data also updates memory.
                            next.mem_fresh = next.fresh & (1 << owner) != 0;
                            actions.push(CoherenceAction::WriteBack { node: owner });
                        }
                        next.caches[owner] = Some(LineState::Shared);
                        actions.push(CoherenceAction::Downgrade { node: owner });
                    }
                }
                next.entry = if rm.install == LineState::Exclusive {
                    dir_exclusive(next.entry, node)
                } else {
                    dir_read(next.entry, node)
                };
                next.caches[node] = Some(rm.install);
                // The fill carries what memory (now updated by any
                // writeback) holds.
                if next.mem_fresh {
                    next.fresh |= 1 << node;
                }
                actions.push(CoherenceAction::Fill {
                    node,
                    state: rm.install,
                });
            }
            Op::Write { node } => {
                match next.caches[node] {
                    Some(LineState::Modified) => {} // hit: no transaction
                    Some(LineState::Exclusive) => {
                        // MESI silent upgrade: no coherence transaction.
                        next.caches[node] = Some(LineState::Modified);
                    }
                    cached => {
                        if self.fault == Some(KernelFault::SilentUpgradeMsi)
                            && cached == Some(LineState::Shared)
                        {
                            // FAULT: the Shared copy is treated like an
                            // Exclusive one — no invalidation round, no
                            // directory transaction; other sharers keep
                            // (now stale) copies.
                            next.caches[node] = Some(LineState::Modified);
                        } else {
                            let wt = self.write_transaction(next.entry, node);
                            let mut mask = wt.invalidate;
                            while mask != 0 {
                                let q = mask.trailing_zeros() as usize;
                                mask &= mask - 1;
                                if q < MAX_MODEL_NODES && next.caches[q].is_some() {
                                    next.caches[q] = None;
                                    actions.push(CoherenceAction::Invalidate { node: q });
                                }
                            }
                            next.entry = wt.entry;
                            if cached.is_none() {
                                actions.push(CoherenceAction::Fill {
                                    node,
                                    state: LineState::Modified,
                                });
                            }
                            next.caches[node] = Some(LineState::Modified);
                        }
                    }
                }
                // The store mints the latest value at the writer; every
                // other copy, and memory, is now behind.
                next.fresh = 1 << node;
                next.mem_fresh = false;
            }
            Op::Evict { node } => {
                let Some(state) = next.caches[node] else {
                    return (next, actions); // nothing cached: no-op
                };
                if state.dirty() {
                    next.mem_fresh = next.fresh & (1 << node) != 0;
                    actions.push(CoherenceAction::WriteBack { node });
                }
                next.caches[node] = None;
                next.entry = self.dir_drop(next.entry, node);
            }
            Op::Prefetch { node } => {
                if next.caches[node].is_some() {
                    return (next, actions); // resident: nothing to fetch
                }
                if matches!(next.entry.owner, Some(owner) if owner != node) {
                    return (next, actions); // owned elsewhere: skipped
                }
                next.entry = dir_read(next.entry, node);
                next.caches[node] = Some(LineState::Shared);
                if next.mem_fresh {
                    next.fresh |= 1 << node;
                }
                actions.push(CoherenceAction::Fill {
                    node,
                    state: LineState::Shared,
                });
            }
        }
        next.normalize();
        (next, actions)
    }
}

// --- exhaustive exploration --------------------------------------------------

/// Bounds of one exhaustive exploration.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Modeled processors (1..=[`MAX_MODEL_NODES`]).
    pub nprocs: usize,
    /// Independent lines explored as a product space (1 or 2 — enough for
    /// message-ordering shapes without blowing up the product).
    pub nlines: usize,
    /// Also require every reachable state to drain to quiescence.
    pub check_quiescence: bool,
    /// Safety cap on discovered states; hitting it reports `complete:
    /// false` instead of running away.
    pub max_states: usize,
}

impl ExploreConfig {
    /// Defaults: quiescence on, a generous state cap.
    pub fn new(nprocs: usize, nlines: usize) -> Self {
        ExploreConfig {
            nprocs,
            nlines,
            check_quiescence: true,
            max_states: 1_000_000,
        }
    }
}

/// An invariant violation found by [`explore`], with a minimal replayable
/// path: applying `path`'s ops (each tagged with its line index) to per-line
/// [`ProtocolState::reset`] states through [`Kernel::step`] reproduces
/// `states`, whose line `line` breaks `rule`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelViolation {
    /// The violated `RULE_*` constant.
    pub rule: &'static str,
    /// Index of the modeled line that breaks the rule.
    pub line: usize,
    /// Shortest event sequence from reset, as `(line index, op)` pairs.
    pub path: Vec<(usize, Op)>,
    /// The offending per-line states after replaying `path`.
    pub states: Vec<ProtocolState>,
}

/// Result of one exhaustive exploration.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Distinct reachable states discovered.
    pub states: usize,
    /// Transitions examined (state × op pairs).
    pub transitions: usize,
    /// Whether the space was exhausted (false only at the `max_states` cap).
    pub complete: bool,
    /// The first (shortest-path) violation, if any.
    pub violation: Option<ModelViolation>,
}

/// Exhaustive BFS over every state `kernel` can reach from reset under
/// `cfg`'s bounds, checking [`check_line`], [`check_data_value`], and
/// (optionally) quiescence at every state. BFS order makes the first
/// reported violation's path minimal; op enumeration order is fixed, so the
/// same kernel and bounds always classify a bug identically.
///
/// Lives in `dss-memsim` rather than `dss-check` so the fault-injection
/// campaign (`dss-faultkit`, which `dss-check` depends on) can drive it
/// against deliberately broken kernels without a dependency cycle.
///
/// # Panics
///
/// Panics if `cfg.nprocs` is 0 or exceeds [`MAX_MODEL_NODES`], or if
/// `cfg.nlines` is 0.
pub fn explore(kernel: &Kernel, cfg: &ExploreConfig) -> Exploration {
    assert!(
        cfg.nprocs >= 1 && cfg.nprocs <= MAX_MODEL_NODES,
        "model supports 1..={MAX_MODEL_NODES} processors"
    );
    assert!(cfg.nlines >= 1, "at least one line to model");
    let init: Vec<ProtocolState> = vec![ProtocolState::reset(); cfg.nlines];
    let mut states: Vec<Vec<ProtocolState>> = vec![init.clone()];
    let mut parent: Vec<Option<(usize, (usize, Op))>> = vec![None];
    let mut index: HashMap<Vec<ProtocolState>, usize> = HashMap::new();
    index.insert(init, 0);
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);
    let mut transitions = 0usize;
    let mut capped = false;

    while let Some(cur) = queue.pop_front() {
        let state = states[cur].clone();
        // Invariants first: a violating state is reported, not expanded, so
        // every counterexample ends at its first broken state.
        for (li, s) in state.iter().enumerate() {
            let verdict = check_line(&s.caches[..cfg.nprocs], s.entry)
                .and_then(|()| check_data_value(s, cfg.nprocs));
            if let Err(rule) = verdict {
                return Exploration {
                    states: states.len(),
                    transitions,
                    complete: false,
                    violation: Some(ModelViolation {
                        rule,
                        line: li,
                        path: path_to(&parent, cur),
                        states: state,
                    }),
                };
            }
        }
        if cfg.check_quiescence {
            for (li, s) in state.iter().enumerate() {
                let (drained, ops, broken) = drain(kernel, *s, cfg.nprocs);
                // Invariants are re-checked along the drain so a fault that
                // the eviction path exposes classifies by the concrete rule
                // it breaks (e.g. a stale directory owner), not merely as a
                // failure to quiesce; the quiescence rule is the fallback
                // when the drain stays clean but never empties.
                let rule = match broken {
                    Some(rule) => Some(rule),
                    None if !drained.is_quiescent(cfg.nprocs) => Some(RULE_NO_QUIESCENCE),
                    None => None,
                };
                if let Some(rule) = rule {
                    let mut path = path_to(&parent, cur);
                    path.extend(ops.into_iter().map(|op| (li, op)));
                    let mut end = state.clone();
                    end[li] = drained;
                    return Exploration {
                        states: states.len(),
                        transitions,
                        complete: false,
                        violation: Some(ModelViolation {
                            rule,
                            line: li,
                            path,
                            states: end,
                        }),
                    };
                }
            }
        }
        for li in 0..cfg.nlines {
            for node in 0..cfg.nprocs {
                for op in [
                    Op::Read { node },
                    Op::Write { node },
                    Op::Evict { node },
                    Op::Prefetch { node },
                ] {
                    transitions += 1;
                    let (next_line, _actions) = kernel.step(state[li], op);
                    if next_line == state[li] {
                        continue;
                    }
                    let mut next = state.clone();
                    next[li] = next_line;
                    if index.contains_key(&next) {
                        continue;
                    }
                    if states.len() >= cfg.max_states {
                        capped = true;
                        continue;
                    }
                    let id = states.len();
                    index.insert(next.clone(), id);
                    states.push(next);
                    parent.push(Some((cur, (li, op))));
                    queue.push_back(id);
                }
            }
        }
    }
    Exploration {
        states: states.len(),
        transitions,
        complete: !capped,
        violation: None,
    }
}

/// Reconstructs the op path from the reset state to state `cur` by walking
/// the BFS predecessor chain.
fn path_to(parent: &[Option<(usize, (usize, Op))>], mut cur: usize) -> Vec<(usize, Op)> {
    let mut path = Vec::new();
    while let Some(Some((prev, step))) = parent.get(cur) {
        path.push(*step);
        cur = *prev;
    }
    path.reverse();
    path
}

/// Evicts every cached copy of `s` in node order, returning the reached
/// state, the ops applied (for counterexample paths), and the first
/// invariant rule an intermediate drain state violates (the drain stops
/// there).
fn drain(
    kernel: &Kernel,
    s: ProtocolState,
    nprocs: usize,
) -> (ProtocolState, Vec<Op>, Option<&'static str>) {
    let mut state = s;
    let mut ops = Vec::new();
    for node in 0..nprocs.min(MAX_MODEL_NODES) {
        if state.caches[node].is_some() {
            let op = Op::Evict { node };
            state = kernel.step(state, op).0;
            ops.push(op);
            let verdict = check_line(&state.caches[..nprocs], state.entry)
                .and_then(|()| check_data_value(&state, nprocs));
            if let Err(rule) = verdict {
                return (state, ops, Some(rule));
            }
        }
    }
    (state, ops, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(sharers: u64, owner: Option<usize>) -> DirEntry {
        DirEntry { sharers, owner }
    }

    #[test]
    fn dir_transforms_match_the_directory_semantics() {
        // read folds a downgraded owner into the sharer mask
        let e = dir_read(entry(0, Some(3)), 0);
        assert_eq!(e, entry((1 << 3) | 1, None));
        // write invalidates sharers and any remote owner, then owns
        let (e, inv) = dir_write(entry(0b101, Some(3)), 0);
        assert_eq!(e, entry(0, Some(0)));
        assert_eq!(inv, 0b100 | (1 << 3));
        // exclusive grant owns without invalidations
        assert_eq!(dir_exclusive(entry(0, None), 2), entry(0, Some(2)));
        // drop clears the node's sharer bit and its ownership
        assert_eq!(dir_drop(entry(0b11, Some(1)), 1), entry(0b01, None));
        assert_eq!(dir_drop(entry(0b11, Some(1)), 0), entry(0b10, Some(1)));
    }

    #[test]
    fn read_miss_decisions() {
        let msi = Kernel::new(Protocol::Msi);
        let mesi = Kernel::new(Protocol::Mesi);
        // Uncached line: MSI installs Shared, MESI grants Exclusive.
        assert_eq!(
            msi.read_miss(entry(0, None), 0, false),
            ReadMiss {
                downgrade: None,
                dirty_forward: false,
                install: LineState::Shared
            }
        );
        assert_eq!(
            mesi.read_miss(entry(0, None), 0, false).install,
            LineState::Exclusive
        );
        // Owned elsewhere: downgrade; dirty owners forward (3-hop shape).
        let rm = msi.read_miss(entry(0, Some(2)), 0, true);
        assert_eq!(rm.downgrade, Some(2));
        assert!(rm.dirty_forward);
        assert_eq!(rm.install, LineState::Shared);
        // Clean MESI owner downgrades without a forward.
        let rm = mesi.read_miss(entry(0, Some(2)), 0, false);
        assert_eq!(rm.downgrade, Some(2));
        assert!(!rm.dirty_forward);
        // The requester itself recorded as owner: no downgrade.
        assert_eq!(msi.read_miss(entry(0, Some(0)), 0, false).downgrade, None);
    }

    #[test]
    fn step_models_a_read_write_invalidate_round() {
        let k = Kernel::new(Protocol::Msi);
        let s = ProtocolState::reset();
        let (s, _) = k.step(s, Op::Read { node: 0 });
        let (s, _) = k.step(s, Op::Read { node: 1 });
        assert_eq!(s.caches[0], Some(LineState::Shared));
        assert_eq!(s.entry.sharers, 0b11);
        let (s, actions) = k.step(s, Op::Write { node: 1 });
        assert_eq!(s.caches[0], None, "sharer invalidated");
        assert_eq!(s.caches[1], Some(LineState::Modified));
        assert_eq!(s.entry, entry(0, Some(1)));
        assert!(actions.contains(&CoherenceAction::Invalidate { node: 0 }));
        assert!(!s.mem_fresh, "memory is behind the modified copy");
        // A remote read forwards the dirty data and refreshes memory.
        let (s, actions) = k.step(s, Op::Read { node: 2 });
        assert!(actions.contains(&CoherenceAction::WriteBack { node: 1 }));
        assert!(s.mem_fresh);
        assert_eq!(s.caches[1], Some(LineState::Shared));
        assert_eq!(s.caches[2], Some(LineState::Shared));
        check_line(&s.caches[..4], s.entry).expect("clean protocol state");
        check_data_value(&s, 4).expect("values coherent");
    }

    #[test]
    fn step_mesi_exclusive_grant_and_silent_upgrade() {
        let k = Kernel::new(Protocol::Mesi);
        let (s, _) = k.step(ProtocolState::reset(), Op::Read { node: 0 });
        assert_eq!(s.caches[0], Some(LineState::Exclusive));
        assert_eq!(s.entry, entry(0, Some(0)));
        let (s, actions) = k.step(s, Op::Write { node: 0 });
        assert_eq!(s.caches[0], Some(LineState::Modified));
        assert!(actions.is_empty(), "silent upgrade has no visible actions");
    }

    #[test]
    fn step_prefetch_skips_owned_lines_and_installs_shared() {
        let k = Kernel::new(Protocol::Mesi);
        // Prefetch of an uncached line installs Shared even under MESI.
        let (s, _) = k.step(ProtocolState::reset(), Op::Prefetch { node: 0 });
        assert_eq!(s.caches[0], Some(LineState::Shared));
        // A line owned elsewhere is skipped entirely.
        let (s, _) = k.step(ProtocolState::reset(), Op::Write { node: 1 });
        let (after, actions) = k.step(s, Op::Prefetch { node: 0 });
        assert_eq!(after, s);
        assert!(actions.is_empty());
    }

    #[test]
    fn step_evict_writes_back_and_informs_the_directory() {
        let k = Kernel::new(Protocol::Msi);
        let (s, _) = k.step(ProtocolState::reset(), Op::Write { node: 2 });
        let (s, actions) = k.step(s, Op::Evict { node: 2 });
        assert!(actions.contains(&CoherenceAction::WriteBack { node: 2 }));
        assert!(s.is_quiescent(4), "drained to the stable state");
    }

    #[test]
    fn negative_each_invariant_rule_fires_on_a_hand_corrupted_state() {
        let two_writers = [Some(LineState::Modified), Some(LineState::Modified)];
        assert_eq!(
            check_line(&two_writers, entry(0, Some(0))),
            Err(RULE_TWO_WRITERS)
        );
        let unowned_writer = [Some(LineState::Modified), None];
        assert_eq!(
            check_line(&unowned_writer, entry(0, None)),
            Err(RULE_WRITABLE_NOT_OWNER)
        );
        let unmasked_sharer = [Some(LineState::Shared), None];
        assert_eq!(
            check_line(&unmasked_sharer, entry(0, None)),
            Err(RULE_SHARED_NOT_IN_MASK)
        );
        let absent_owner: [Option<LineState>; 2] = [None, None];
        assert_eq!(
            check_line(&absent_owner, entry(0, Some(1))),
            Err(RULE_OWNER_NO_COPY)
        );
        let phantom_sharer: [Option<LineState>; 2] = [None, None];
        assert_eq!(
            check_line(&phantom_sharer, entry(0b10, None)),
            Err(RULE_STRAY_SHARER)
        );
        // Writable-coexists needs the writer owned (else the ownership rule
        // fires first) and the bystander masked (else the mask rule fires):
        // exactly the silent-upgrade wreckage after the directory "caught
        // up" with the writer.
        let coexist = [Some(LineState::Modified), Some(LineState::Shared)];
        assert_eq!(
            check_line(&coexist, entry(0b10, Some(0))),
            Err(RULE_WRITABLE_COEXISTS)
        );
        // Data-value rules.
        let mut s = ProtocolState::reset();
        s.caches[0] = Some(LineState::Shared);
        s.entry = entry(0b1, None);
        s.fresh = 0; // cached but stale
        assert_eq!(check_data_value(&s, 2), Err(RULE_STALE_COPY));
        let mut s = ProtocolState::reset();
        s.mem_fresh = false; // nothing cached, memory behind
        assert_eq!(check_data_value(&s, 2), Err(RULE_STALE_MEMORY));
    }

    #[test]
    fn explore_exhausts_clean_kernels() {
        for protocol in [Protocol::Msi, Protocol::Mesi] {
            let ex = explore(&Kernel::new(protocol), &ExploreConfig::new(3, 1));
            assert!(ex.complete);
            assert!(ex.violation.is_none(), "{:?}", ex.violation);
            assert!(ex.states > 10, "only {} states", ex.states);
        }
    }

    #[test]
    fn explore_finds_the_silent_upgrade_with_a_minimal_path() {
        let k = Kernel::with_fault(Protocol::Msi, KernelFault::SilentUpgradeMsi);
        let ex = explore(&k, &ExploreConfig::new(2, 1));
        let v = ex.violation.expect("fault must be found");
        assert_eq!(v.rule, RULE_WRITABLE_NOT_OWNER);
        // Minimal: one read to get a Shared copy, one write to abuse it.
        assert_eq!(v.path.len(), 2, "path {:?}", v.path);
        // The path replays to the reported state.
        let mut s = ProtocolState::reset();
        for (_, op) in &v.path {
            s = k.step(s, *op).0;
        }
        assert_eq!(s, v.states[v.line]);
    }

    #[test]
    fn explore_finds_the_stale_owner() {
        let k = Kernel::with_fault(Protocol::Msi, KernelFault::StaleOwner);
        let ex = explore(&k, &ExploreConfig::new(2, 1));
        let v = ex.violation.expect("fault must be found");
        assert_eq!(v.rule, RULE_OWNER_NO_COPY);
        assert_eq!(v.path.len(), 2, "write then evict: {:?}", v.path);
    }

    #[test]
    fn explore_state_cap_reports_incomplete() {
        let ex = explore(
            &Kernel::new(Protocol::Msi),
            &ExploreConfig {
                max_states: 4,
                ..ExploreConfig::new(4, 1)
            },
        );
        assert!(!ex.complete);
        assert!(ex.violation.is_none());
    }

    #[test]
    fn two_line_product_space_stays_clean_and_finite() {
        let ex = explore(&Kernel::new(Protocol::Mesi), &ExploreConfig::new(2, 2));
        assert!(ex.complete);
        assert!(ex.violation.is_none());
    }

    #[test]
    fn ops_render_for_counterexamples() {
        assert_eq!(Op::Read { node: 3 }.to_string(), "P3 Read");
        assert_eq!(Op::Write { node: 0 }.node(), 0);
    }
}
