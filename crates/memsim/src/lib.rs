//! Directory-based CC-NUMA memory-hierarchy simulator for the DSS study.
//!
//! Models the paper's evaluation platform: a 4-processor cache-coherent NUMA
//! shared-memory multiprocessor where each node has an off-the-shelf 500 MHz
//! processor, a 16-entry write buffer, a 4 KB direct-mapped on-chip primary
//! cache with 32-byte lines, and a 128 KB 2-way off-chip secondary cache with
//! 64-byte lines. Processors stall on read misses and on write-buffer
//! overflow. The interconnect has a fixed 100-cycle hop, giving round-trip
//! latencies of 16 / 80 / 249 / 351 cycles for requests satisfied by the
//! secondary cache, local memory, a 2-hop remote transaction, or a 3-hop
//! (dirty-in-third-node) transaction.
//!
//! Inputs are per-processor [`dss_trace::Trace`]s; the simulator interleaves
//! them deterministically by simulated time, models metalock spinning at
//! simulation time (the paper's *MSync*), classifies every read miss as cold
//! / conflict / coherence per data structure (Figure 7), attributes memory
//! stall cycles per data structure (Figure 6(b)), and optionally applies the
//! paper's Section 6 sequential prefetcher for database data.
//!
//! Configurations are built from [`MachineConfig::baseline`] plus chained
//! `with_*` deviations (see [`MachineConfig`]); [`Machine`] shows an
//! end-to-end example. [`Machine`], [`MachineConfig`], and [`SimStats`] are
//! all `Send`, so a parallel experiment harness can run one simulation per
//! thread — each point is a fresh machine, and results are deterministic
//! regardless of scheduling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod directory;
mod machine;
mod paged;
pub mod protocol;
pub mod rules;
mod stats;
mod verify;

pub use cache::{Cache, LineState, MissKind, RemovalCause};
pub use config::{CacheConfig, Latencies, MachineConfig, Protocol};
pub use directory::{home_of, DirEntry, Directory};
pub use machine::Machine;
pub use stats::{LevelStats, MissMatrix, ProcStats, SimStats, TimeBreakdown};
pub use verify::CoherenceViolation;

// The parallel harness in `dss-core` moves machines and results across
// threads; keep that guaranteed at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Machine>();
    assert_send_sync::<MachineConfig>();
    assert_send_sync::<SimStats>();
};
