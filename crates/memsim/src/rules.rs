//! The single home of every coherence rule string.
//!
//! The runtime observer ([`crate::verify`]), the exhaustive model checker
//! ([`crate::protocol::explore`]), the fault-injection campaign, and
//! `dss-check model` all report violations by these exact strings, and the
//! drill sites match on them verbatim — so a reworded copy in one place
//! would silently break the cross-checks. `dss-check lint` enforces the
//! dedup: any of these literals appearing in memsim source outside this
//! module is a finding.

/// Invariant: at most one node holds a line writable.
pub const RULE_TWO_WRITERS: &str = "two nodes hold the line writable";
/// Invariant: a writable copy is recorded as the directory owner.
pub const RULE_WRITABLE_NOT_OWNER: &str =
    "a node holds the line writable without directory ownership";
/// Invariant: every cached Shared copy appears in the sharer mask (or is the
/// recorded owner mid-downgrade).
pub const RULE_SHARED_NOT_IN_MASK: &str =
    "a cached shared copy is missing from the directory sharer mask";
/// Invariant: a recorded owner actually caches the line.
pub const RULE_OWNER_NO_COPY: &str = "directory owner holds no copy of the line";
/// Invariant: the sharer mask lists only nodes that cache the line.
pub const RULE_STRAY_SHARER: &str = "directory lists a sharer that caches no copy of the line";
/// Invariant: a writable copy never coexists with other cached copies.
pub const RULE_WRITABLE_COEXISTS: &str = "a writable copy coexists with other cached copies";
/// Data-value invariant: every cached copy holds the latest written value.
pub const RULE_STALE_COPY: &str = "a cached copy does not hold the latest written value";
/// Data-value invariant: memory is current unless a Modified copy exists.
pub const RULE_STALE_MEMORY: &str = "memory is stale with no modified copy to supply the value";
/// Quiescence: evicting every cached copy must reach the stable uncached
/// state (empty directory entry, memory current).
pub const RULE_NO_QUIESCENCE: &str =
    "draining every cached copy does not reach the stable uncached state";
/// Inclusion: every resident L1 line is backed by its L2 line.
pub const RULE_INCLUSION_MISSING: &str = "L1 holds a line its L2 does not (inclusion)";
/// Inclusion: an L1 copy is never more privileged than the L2 line holding it.
pub const RULE_INCLUSION_PRIVILEGE: &str = "L1 copy is more privileged than its L2 line";

/// Every rule string, for exhaustive cross-checks (the lint dedup rule scans
/// memsim source for stray copies of any entry here).
pub const ALL: &[&str] = &[
    RULE_TWO_WRITERS,
    RULE_WRITABLE_NOT_OWNER,
    RULE_SHARED_NOT_IN_MASK,
    RULE_OWNER_NO_COPY,
    RULE_STRAY_SHARER,
    RULE_WRITABLE_COEXISTS,
    RULE_STALE_COPY,
    RULE_STALE_MEMORY,
    RULE_NO_QUIESCENCE,
    RULE_INCLUSION_MISSING,
    RULE_INCLUSION_PRIVILEGE,
];
