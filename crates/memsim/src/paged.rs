//! A two-level paged flat map over the emulated address space.
//!
//! The simulator's per-line bookkeeping — miss-classification history in
//! [`crate::Cache`], entries in [`crate::Directory`] — was originally
//! hash-based (`HashSet`/`HashMap` keyed by line address), which put one to
//! three hash probes on every simulated miss. [`PagedMap`] replaces the
//! hashing with pure array indexing by exploiting the known layout of the
//! emulated address space (see `dss_shmem`): everything below `PRIVATE_BASE`
//! is one dense-from-the-bottom shared segment, and above it live at most
//! [`MAX_PROCS`] private segments at a fixed power-of-two stride. An address
//! therefore splits into `(segment, offset)` with two branch-free shifts, the
//! offset shifts down by the map's granularity to a line index, and the index
//! selects a slot inside a lazily allocated fixed-size page.
//!
//! Reads of untouched pages return `T::default()` without allocating; writes
//! allocate at page granularity, so sparse traces stay cheap while hot lines
//! cost exactly one indexed load or store.

use dss_shmem::{MAX_PROCS, PRIVATE_BASE, PRIVATE_STRIDE};

/// log2 of the slots per page (4096 slots).
const PAGE_SHIFT: u32 = 12;
const PAGE_SLOTS: usize = 1 << PAGE_SHIFT;
const STRIDE_SHIFT: u32 = PRIVATE_STRIDE.trailing_zeros();
const _: () = assert!(PRIVATE_STRIDE.is_power_of_two());

/// One segment's lazily allocated pages.
#[derive(Clone, Debug)]
struct Segment<T> {
    pages: Vec<Option<Box<[T]>>>,
}

impl<T> Default for Segment<T> {
    fn default() -> Self {
        Segment { pages: Vec::new() }
    }
}

/// A flat map from line-granular addresses to `T`, paged per segment.
#[derive(Clone, Debug)]
pub(crate) struct PagedMap<T> {
    /// Granularity shift: slot index = segment offset >> `gran`.
    gran: u32,
    /// Segment 0 is everything below `PRIVATE_BASE`; segment 1 + p is
    /// process p's private segment.
    segments: Vec<Segment<T>>,
}

/// Splits an address into its segment index and in-segment offset.
///
/// # Panics
///
/// Panics if `addr` lies past the last private segment — such an address
/// cannot come from the emulated allocators, so indexing it indicates a bug.
#[inline]
fn split(addr: u64) -> (usize, u64) {
    if addr < PRIVATE_BASE {
        (0, addr)
    } else {
        let d = addr - PRIVATE_BASE;
        let seg = (d >> STRIDE_SHIFT) as usize;
        assert!(
            seg < MAX_PROCS,
            "address {addr:#x} beyond the emulated address space"
        );
        (1 + seg, d & (PRIVATE_STRIDE - 1))
    }
}

impl<T: Copy + Default> PagedMap<T> {
    /// An empty map with the given granularity shift (e.g. log2 of the cache
    /// line size).
    pub(crate) fn new(gran: u32) -> Self {
        PagedMap {
            gran,
            segments: Vec::new(),
        }
    }

    #[inline]
    fn locate(&self, addr: u64) -> (usize, usize, usize) {
        let (seg, off) = split(addr);
        let idx = off >> self.gran;
        (
            (idx >> PAGE_SHIFT) as usize,
            idx as usize & (PAGE_SLOTS - 1),
            seg,
        )
    }

    /// The value at `addr` (`T::default()` if never written).
    #[inline]
    pub(crate) fn get(&self, addr: u64) -> T {
        let (page, slot, seg) = self.locate(addr);
        match self
            .segments
            .get(seg)
            .and_then(|s| s.pages.get(page))
            .and_then(Option::as_deref)
        {
            Some(p) => p[slot],
            None => T::default(),
        }
    }

    /// Mutable access to the slot for `addr`, allocating its page on demand.
    #[inline]
    pub(crate) fn get_mut(&mut self, addr: u64) -> &mut T {
        let (page, slot, seg) = self.locate(addr);
        if seg >= self.segments.len() {
            self.segments.resize_with(seg + 1, Segment::default);
        }
        let pages = &mut self.segments[seg].pages;
        if page >= pages.len() {
            pages.resize_with(page + 1, || None);
        }
        let p =
            pages[page].get_or_insert_with(|| vec![T::default(); PAGE_SLOTS].into_boxed_slice());
        &mut p[slot]
    }

    /// Mutable access without allocating: `None` if the page was never
    /// written (every slot in it still holds `T::default()`).
    #[inline]
    pub(crate) fn peek_mut(&mut self, addr: u64) -> Option<&mut T> {
        let (page, slot, seg) = self.locate(addr);
        self.segments
            .get_mut(seg)?
            .pages
            .get_mut(page)?
            .as_deref_mut()
            .map(|p| &mut p[slot])
    }

    /// Stores `value` at `addr`.
    #[inline]
    pub(crate) fn set(&mut self, addr: u64, value: T) {
        *self.get_mut(addr) = value;
    }

    /// Visits every slot of every allocated page as `(address, value)`, where
    /// the address is the base of the slot's line. Untouched pages are never
    /// visited; touched pages yield all their slots (including ones still at
    /// `T::default()`), so callers that only care about live entries filter.
    /// Cost is proportional to allocated pages — fine for post-run sweeps,
    /// not for per-event paths.
    pub(crate) fn for_each(&self, mut f: impl FnMut(u64, T)) {
        for (seg_idx, seg) in self.segments.iter().enumerate() {
            let base = if seg_idx == 0 {
                0
            } else {
                PRIVATE_BASE + (seg_idx as u64 - 1) * PRIVATE_STRIDE
            };
            for (page_idx, page) in seg.pages.iter().enumerate() {
                let Some(slots) = page.as_deref() else {
                    continue;
                };
                for (slot_idx, value) in slots.iter().enumerate() {
                    let line_idx = ((page_idx as u64) << PAGE_SHIFT) + slot_idx as u64;
                    f(base + (line_idx << self.gran), *value);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_shmem::{private_base, SHARED_BASE};

    #[test]
    fn default_until_written() {
        let mut m: PagedMap<u8> = PagedMap::new(6);
        assert_eq!(m.get(SHARED_BASE), 0);
        m.set(SHARED_BASE, 7);
        assert_eq!(m.get(SHARED_BASE), 7);
        // Same 64-byte line, different byte: same slot.
        assert_eq!(m.get(SHARED_BASE + 63), 7);
        // Next line: untouched.
        assert_eq!(m.get(SHARED_BASE + 64), 0);
    }

    #[test]
    fn segments_are_independent() {
        let mut m: PagedMap<u32> = PagedMap::new(6);
        m.set(SHARED_BASE, 1);
        m.set(private_base(0), 2);
        m.set(private_base(3), 3);
        assert_eq!(m.get(SHARED_BASE), 1);
        assert_eq!(m.get(private_base(0)), 2);
        assert_eq!(m.get(private_base(3)), 3);
        // Low addresses (outside any allocator) still index cleanly.
        assert_eq!(m.get(0x40), 0);
        m.set(0x40, 9);
        assert_eq!(m.get(0x40), 9);
    }

    #[test]
    fn peek_mut_never_allocates() {
        let mut m: PagedMap<u8> = PagedMap::new(6);
        assert!(m.peek_mut(SHARED_BASE).is_none());
        m.set(SHARED_BASE, 5);
        assert_eq!(m.peek_mut(SHARED_BASE).copied(), Some(5));
        // A different page of the same segment is still untouched.
        assert!(m.peek_mut(SHARED_BASE + (1 << 30)).is_none());
    }

    #[test]
    fn for_each_visits_touched_pages_with_reconstructed_addresses() {
        let mut m: PagedMap<u32> = PagedMap::new(6);
        m.set(SHARED_BASE + 128, 7);
        m.set(private_base(2) + 64, 9);
        let mut live = Vec::new();
        m.for_each(|addr, v| {
            if v != 0 {
                live.push((addr, v));
            }
        });
        live.sort_unstable();
        assert_eq!(
            live,
            vec![(SHARED_BASE + 128, 7), (private_base(2) + 64, 9)]
        );
    }

    #[test]
    #[should_panic(expected = "beyond the emulated address space")]
    fn rejects_addresses_past_the_last_segment() {
        let m: PagedMap<u8> = PagedMap::new(6);
        m.get(PRIVATE_BASE + MAX_PROCS as u64 * PRIVATE_STRIDE);
    }
}
