//! Machine configuration.

/// Coherence protocol variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Protocol {
    /// The paper's three-state invalidation protocol.
    #[default]
    Msi,
    /// MESI extension: a sole-sharer read installs the line Exclusive, so
    /// the first write to it needs no coherence transaction. Used by the
    /// protocol ablation, not by the paper's experiments.
    Mesi,
}

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Line size in bytes (power of two).
    pub line: u64,
    /// Associativity (1 = direct mapped).
    pub assoc: u32,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible into
    /// `assoc` ways of `line`-byte lines, or non-power-of-two values).
    pub fn sets(&self) -> u64 {
        assert!(self.assoc >= 1, "associativity must be at least 1");
        assert!(
            self.line.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            self.size.is_multiple_of(self.line * self.assoc as u64),
            "inconsistent cache geometry"
        );
        let sets = self.size / (self.line * self.assoc as u64);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }

    /// Validates the geometry: `line` and the resulting set count must be
    /// powers of two (the cache indexes by shift and mask), and the size must
    /// divide evenly into `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics on any violation, with a message naming the offending field.
    pub fn validate(&self) {
        let _ = self.sets();
    }
}

/// Round-trip latencies in processor cycles, as the paper specifies: "on a
/// primary cache miss, the round-trip latency time for a request satisfied by
/// the secondary cache, local memory, and remote node in a 2-hop or 3-hop
/// transaction is 16, 80, 249, and 351 cycles respectively".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Latencies {
    /// L1 miss satisfied by the local L2.
    pub l2: u64,
    /// Satisfied by local memory (this node is home, line clean).
    pub local: u64,
    /// Satisfied by a remote home node (2-hop).
    pub remote2: u64,
    /// Dirty in a third node (3-hop).
    pub remote3: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            l2: 16,
            local: 80,
            remote2: 249,
            remote3: 351,
        }
    }
}

impl Latencies {
    /// Latencies adjusted for the line-transfer time of a given L2 line
    /// size. The paper quotes its round-trip numbers for the 64-byte
    /// baseline; transferring a longer line over the same 16-byte-per-cycle
    /// data path adds (and a shorter line removes) `line/16` cycles.
    pub fn for_line_size(self, l2_line: u64) -> Latencies {
        let adjust = |base: u64| (base + l2_line / 16).saturating_sub(4).max(1);
        Latencies {
            l2: adjust(self.l2),
            local: adjust(self.local),
            remote2: adjust(self.remote2),
            remote3: adjust(self.remote3),
        }
    }
}

/// Full machine configuration. [`MachineConfig::baseline`] reproduces the
/// paper's 4-processor CC-NUMA: 4 KB direct-mapped L1 with 32-byte lines,
/// 128 KB 2-way L2 with 64-byte lines, a 16-entry write buffer, and the
/// latencies above.
///
/// Configurations are built by starting from [`MachineConfig::baseline`] and
/// chaining `with_*` deviations — the single construction surface every
/// experiment uses:
///
/// ```
/// use dss_memsim::{MachineConfig, Protocol};
///
/// let cfg = MachineConfig::baseline()
///     .with_line_size(128)
///     .with_cache_sizes(16 * 1024, 512 * 1024)
///     .with_processors(2)
///     .with_data_prefetch(4)
///     .with_protocol(Protocol::Mesi);
/// cfg.validate();
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of processors (nodes).
    pub nprocs: usize,
    /// Primary cache.
    pub l1: CacheConfig,
    /// Secondary cache.
    pub l2: CacheConfig,
    /// Write-buffer entries per processor.
    pub write_buffer: usize,
    /// Latency parameters.
    pub lat: Latencies,
    /// Cycles between successive spin-lock polls.
    pub spin_interval: u64,
    /// Sequential prefetch degree for database data (0 = off). When on, each
    /// access to database data prefetches this many subsequent L1 lines into
    /// the primary cache.
    pub prefetch_data_lines: u32,
    /// Coherence protocol (the paper's experiments use MSI).
    pub protocol: Protocol,
}

impl MachineConfig {
    /// The paper's baseline architecture.
    pub fn baseline() -> Self {
        MachineConfig {
            nprocs: 4,
            l1: CacheConfig {
                size: 4 * 1024,
                line: 32,
                assoc: 1,
            },
            l2: CacheConfig {
                size: 128 * 1024,
                line: 64,
                assoc: 2,
            },
            write_buffer: 16,
            lat: Latencies::default(),
            spin_interval: 20,
            prefetch_data_lines: 0,
            protocol: Protocol::Msi,
        }
    }

    /// The baseline with a different L2 line size; the L1 line is kept at
    /// half the L2 line, as in all the paper's experiments, and miss
    /// latencies gain the longer line's transfer time
    /// (see [`Latencies::for_line_size`]).
    ///
    /// # Panics
    ///
    /// Panics if `l2_line` is smaller than 16 bytes.
    pub fn with_line_size(mut self, l2_line: u64) -> Self {
        assert!(
            l2_line >= 16,
            "L2 lines below 16 bytes are not meaningful here"
        );
        self.l2.line = l2_line;
        self.l1.line = l2_line / 2;
        self.lat = Latencies::default().for_line_size(l2_line);
        self
    }

    /// The baseline with different cache capacities.
    pub fn with_cache_sizes(mut self, l1_size: u64, l2_size: u64) -> Self {
        self.l1.size = l1_size;
        self.l2.size = l2_size;
        self
    }

    /// The baseline with a different node count (the processor-scaling
    /// extension; the paper fixes four).
    ///
    /// # Panics
    ///
    /// Panics if `nprocs` is zero.
    pub fn with_processors(mut self, nprocs: usize) -> Self {
        assert!(nprocs >= 1, "a machine needs at least one processor");
        self.nprocs = nprocs;
        self
    }

    /// Enables the paper's Section 6 prefetcher (4 L1 lines of database data).
    pub fn with_data_prefetch(mut self, lines: u32) -> Self {
        self.prefetch_data_lines = lines;
        self
    }

    /// Selects the coherence protocol (ablation; the paper uses MSI).
    pub fn with_protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (also checked lazily by `sets`):
    /// non-power-of-two line sizes or set counts, zero associativity, or L1
    /// lines longer than L2 lines.
    pub fn validate(&self) {
        assert!(self.nprocs >= 1);
        assert!(
            self.l1.line <= self.l2.line,
            "L1 lines must not exceed L2 lines"
        );
        self.l1.validate();
        self.l2.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper() {
        let c = MachineConfig::baseline();
        c.validate();
        assert_eq!(c.nprocs, 4);
        assert_eq!(c.l1.sets(), 128); // 4 KB / 32 B direct mapped
        assert_eq!(c.l2.sets(), 1024); // 128 KB / 64 B / 2-way
        assert_eq!(
            c.lat,
            Latencies {
                l2: 16,
                local: 80,
                remote2: 249,
                remote3: 351
            }
        );
        assert_eq!(c.write_buffer, 16);
    }

    #[test]
    fn line_size_sweep_keeps_ratio() {
        for l2_line in [16u64, 32, 64, 128, 256] {
            let c = MachineConfig::baseline().with_line_size(l2_line);
            c.validate();
            assert_eq!(c.l1.line * 2, c.l2.line);
        }
    }

    #[test]
    fn cache_size_sweep_validates() {
        for (l1, l2) in [(4u64, 128u64), (16, 512), (64, 2048), (256, 8192)] {
            let c = MachineConfig::baseline().with_cache_sizes(l1 * 1024, l2 * 1024);
            c.validate();
        }
    }

    #[test]
    #[should_panic(expected = "inconsistent cache geometry")]
    fn bad_geometry_rejected() {
        CacheConfig {
            size: 1000,
            line: 32,
            assoc: 1,
        }
        .sets();
    }

    #[test]
    #[should_panic(expected = "line size must be a power of two")]
    fn non_power_of_two_line_rejected() {
        let mut c = MachineConfig::baseline();
        c.l1.line = 48;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "set count must be a power of two")]
    fn non_power_of_two_sets_rejected() {
        CacheConfig {
            size: 96 * 1024,
            line: 64,
            assoc: 2,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "associativity must be at least 1")]
    fn zero_associativity_rejected() {
        CacheConfig {
            size: 4 * 1024,
            line: 32,
            assoc: 0,
        }
        .validate();
    }

    #[test]
    fn transfer_time_anchors_at_the_baseline() {
        // The paper's quoted numbers are for 64-byte lines; other sizes
        // shift by the line-transfer time.
        let base = Latencies::default();
        assert_eq!(base.for_line_size(64), base);
        let wide = base.for_line_size(256);
        assert_eq!(wide.remote2, 249 - 4 + 16);
        let narrow = base.for_line_size(16);
        assert_eq!(narrow.l2, 16 - 4 + 1);
        assert!(narrow.local < base.local && base.local < wide.local);
    }

    #[test]
    fn protocol_selection() {
        let c = MachineConfig::baseline();
        assert_eq!(c.protocol, Protocol::Msi);
        assert_eq!(c.with_protocol(Protocol::Mesi).protocol, Protocol::Mesi);
    }
}
