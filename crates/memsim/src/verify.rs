//! Coherence invariant checking over a [`Machine`]'s caches and directory.
//!
//! The simulator's hot loop (paged tables, packed directory entries, bitmask
//! invalidations) is exactly the kind of code where a silent protocol bug
//! would quietly skew every miss decomposition the reproduction reports, so
//! this module makes the directory protocol's invariants machine-checkable:
//!
//! * **single-writer / multiple-reader** — at most one node holds a line in a
//!   writable (Exclusive/Modified) state, and never alongside other copies;
//!   in particular no dirty line exists in two L2s;
//! * **directory covers the copies** — the sharer mask ∪ owner is a superset
//!   of the nodes actually caching the line;
//! * **cache state consistent with directory state** — a writable copy is
//!   recorded as the directory owner, and a recorded owner actually holds the
//!   line writable;
//! * **inclusion** — every resident L1 line is backed by its L2 line, and an
//!   L1 copy is never more privileged than the L2 line containing it.
//!
//! The directory-protocol rules themselves (everything except inclusion,
//! which concerns the machine's two physical cache levels) are defined once,
//! in [`crate::protocol::check_line`] — the same function the exhaustive
//! `dss-check model` pass evaluates over the kernel's whole reachable state
//! space, so the runtime observer and the model checker cannot drift.
//!
//! [`Machine::verify_line`] checks one line (allocation-free on the success
//! path, so the per-transaction observer hook compiled in by the
//! `check-invariants` feature can call it after every transaction without
//! disturbing the default build), and [`Machine::verify_coherence`] sweeps
//! every line the directory or any cache has ever touched. Violations carry
//! the offending line, the clock (when observed mid-run), and a rendering of
//! the per-node cache states against the directory entry.

use std::collections::BTreeSet;
use std::fmt;

use crate::cache::LineState;
use crate::machine::Machine;

/// A detected breach of the directory protocol's invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoherenceViolation {
    /// The L2-granularity line address the violation concerns.
    pub line: u64,
    /// Simulated clock of the observing processor when the violation was
    /// caught mid-run; zero for post-run sweeps.
    pub clock: u64,
    /// Which invariant broke.
    pub rule: &'static str,
    /// Per-node cache states and the directory entry at the time.
    pub detail: String,
}

impl fmt::Display for CoherenceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coherence violation at line {:#x} (clock {}): {}; {}",
            self.line, self.clock, self.rule, self.detail
        )
    }
}

impl Machine {
    /// Renders the directory entry and every node's L2/L1 state for `line` —
    /// the `detail` of a [`CoherenceViolation`].
    fn render_line(&self, line: u64) -> String {
        let entry = self.dir.entry(line);
        let mut out = format!(
            "directory {{ sharers: {:#b}, owner: {:?} }}",
            entry.sharers, entry.owner
        );
        for (id, node) in self.nodes.iter().enumerate() {
            let l2 = node.l2.peek_state(line);
            let mut l1 = Vec::new();
            let mut a = line;
            while a < line + self.l2_line {
                if let Some(s) = node.l1.peek_state(a) {
                    l1.push(format!("{:#x}:{s:?}", a));
                }
                a += self.l1_line;
            }
            out.push_str(&format!(
                ", node {id} {{ l2: {l2:?}, l1: [{}] }}",
                l1.join(", ")
            ));
        }
        out
    }

    fn violation(&self, line: u64, rule: &'static str) -> CoherenceViolation {
        CoherenceViolation {
            line,
            clock: 0,
            rule,
            detail: self.render_line(line),
        }
    }

    /// Checks the protocol invariants for the single L2 line `line`.
    ///
    /// Allocation-free unless a violation is found, so it is cheap enough for
    /// the `check-invariants` observer hook to run after every transaction.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant, with per-node state attached.
    pub fn verify_line(&self, line: u64) -> Result<(), CoherenceViolation> {
        let entry = self.dir.entry(line);
        // The directory-protocol rules are the kernel's
        // ([`crate::protocol::check_line`]): one definition serves this
        // runtime observer and the exhaustive `dss-check model` pass, so the
        // two can never drift.
        let mut caches = [None; 64];
        for (id, node) in self.nodes.iter().enumerate() {
            caches[id] = node.l2.peek_state(line);
        }
        let nprocs = self.nodes.len();
        if let Err(rule) = crate::protocol::check_line(&caches[..nprocs], entry) {
            return Err(self.violation(line, rule));
        }
        // Inclusion is a property of the machine's two physical cache levels,
        // not of the protocol, so its rules stay here: every resident L1
        // sub-line is backed by the L2 line and never more privileged.
        for (id, node) in self.nodes.iter().enumerate() {
            let l2 = caches[id];
            let mut a = line;
            while a < line + self.l2_line {
                if let Some(l1) = node.l1.peek_state(a) {
                    match l2 {
                        None => {
                            return Err(self.violation(line, crate::rules::RULE_INCLUSION_MISSING))
                        }
                        Some(l2s) if l1.writable() && !l2s.writable() => {
                            return Err(
                                self.violation(line, crate::rules::RULE_INCLUSION_PRIVILEGE)
                            );
                        }
                        Some(_) => {}
                    }
                }
                a += self.l1_line;
            }
        }
        Ok(())
    }

    /// Snapshot of the line containing `addr` as the transition kernel sees
    /// it: the directory entry plus every node's L2 state. This is the
    /// machine-side image of a [`crate::protocol::ProtocolState`], exposed so
    /// conformance tests can check that every transition the full machine
    /// takes is in the kernel's relation.
    pub fn observe_protocol_state(&self, addr: u64) -> (crate::DirEntry, Vec<Option<LineState>>) {
        let line = addr & self.l2_line_mask;
        let entry = self.dir.entry(line);
        let caches = self
            .nodes
            .iter()
            .map(|node| node.l2.peek_state(line))
            .collect();
        (entry, caches)
    }

    /// Sweeps every line the directory or any cache has ever touched through
    /// [`Machine::verify_line`]. Proportional to touched state, so intended
    /// after a run, not per event.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant (lowest line address first).
    pub fn verify_coherence(&self) -> Result<(), CoherenceViolation> {
        let mut lines = BTreeSet::new();
        self.dir.for_each_entry(|line, entry| {
            if entry.sharers != 0 || entry.owner.is_some() {
                lines.insert(line);
            }
        });
        for node in &self.nodes {
            for (l2_line, _) in node.l2.resident_lines() {
                lines.insert(l2_line);
            }
            for (l1_line, _) in node.l1.resident_lines() {
                lines.insert(l1_line & self.l2_line_mask);
            }
        }
        for line in lines {
            self.verify_line(line)?;
        }
        Ok(())
    }

    /// Visits every line the directory has ever tracked with its current
    /// entry — lets external checkers pick real lines to probe or corrupt.
    pub fn for_each_directory_entry(&self, f: impl FnMut(u64, crate::DirEntry)) {
        self.dir.for_each_entry(f);
    }

    /// Overwrites the directory sharer mask for the line containing `addr`
    /// without touching any cache — deliberately breaking coherence so
    /// negative tests can prove the invariant checker fires. Never call this
    /// from simulation code.
    pub fn corrupt_directory_sharers(&mut self, addr: u64, sharers: u64) {
        let line = addr & self.l2_line_mask;
        self.dir.corrupt_sharers(line, sharers);
    }

    /// Overwrites the directory's recorded owner for the line containing
    /// `addr` without touching any cache — the stale-owner counterpart of
    /// [`Machine::corrupt_directory_sharers`], for negative tests and the
    /// fault-injection campaign. Never call this from simulation code.
    pub fn corrupt_directory_owner(&mut self, addr: u64, owner: Option<usize>) {
        let line = addr & self.l2_line_mask;
        self.dir.corrupt_owner(line, owner);
    }

    /// Forces `node`'s L2 copy of the line containing `addr` into `state`
    /// without any protocol action — cache-state corruption for the
    /// fault-injection campaign, compiled only alongside the invariant
    /// observer (`check-invariants`) that exists to catch it. Never call
    /// this from simulation code.
    ///
    /// The line must be resident in that L2 (corrupting a non-resident line
    /// is a no-op, so campaigns pick a line from
    /// [`Cache::resident_lines`](crate::Cache::resident_lines)).
    #[cfg(feature = "check-invariants")]
    pub fn corrupt_cache_state(&mut self, node: usize, addr: u64, state: LineState) {
        let line = addr & self.l2_line_mask;
        if let Some(n) = self.nodes.get_mut(node) {
            if n.l2.contains(line) {
                n.l2.set_state(line, state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::MachineConfig;
    use dss_shmem::SHARED_BASE;
    use dss_trace::{DataClass, Tracer};

    fn run_small() -> crate::Machine {
        let t0 = Tracer::new(0);
        t0.read(SHARED_BASE, 8, DataClass::Data);
        t0.write(SHARED_BASE + 4096, 8, DataClass::LockHash);
        let t1 = Tracer::new(1);
        t1.busy(10_000);
        t1.read(SHARED_BASE, 8, DataClass::Data);
        let mut m = crate::Machine::new(MachineConfig::baseline());
        m.run(&[t0.take(), t1.take()]);
        m
    }

    #[test]
    fn healthy_run_verifies_clean() {
        let m = run_small();
        m.verify_coherence().expect("protocol invariants hold");
        m.check_invariants();
    }

    #[test]
    fn corrupted_sharer_mask_is_detected() {
        let mut m = run_small();
        // Claim a node that caches nothing is a sharer, and drop the real
        // sharers: the cached copies are now missing from the mask.
        m.corrupt_directory_sharers(SHARED_BASE, 1 << 3);
        let v = m.verify_coherence().expect_err("corruption must be caught");
        assert_eq!(v.line, SHARED_BASE);
        assert!(v.rule.contains("sharer mask"), "rule was {:?}", v.rule);
        assert!(v.detail.contains("node 0"), "detail renders per-node state");
    }

    #[test]
    fn verify_line_reports_only_the_probed_line() {
        let mut m = run_small();
        m.corrupt_directory_sharers(SHARED_BASE, 0);
        assert!(m.verify_line(SHARED_BASE).is_err());
        assert!(m.verify_line(SHARED_BASE + 4096).is_ok());
    }
}
