//! The multiprocessor simulator: interleaves per-processor traces by
//! simulated time through private two-level caches, write buffers, a full-map
//! directory, and spinlock timing.
//!
//! Modeling follows the paper's architecture section: processors stall on
//! read misses and write-buffer overflow; a fixed-latency interconnect
//! (contention modeled everywhere except the network); MSI directory
//! coherence at L2-line granularity with inclusive L1s. Cache and directory
//! state changes are applied when a reference is issued, which keeps the
//! interleaving deterministic.
//!
//! The hot loop is hash-free and allocation-free: the next processor to step
//! comes from a binary heap keyed on `(clock, proc_id)` rather than a scan,
//! miss classification is one paged-table probe inside
//! [`Cache::record_miss`], and invalidation targets arrive as a node bitmask
//! from the directory.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use dss_trace::{DataClass, Event, Trace, TraceError, TraceSource};

use crate::cache::{Cache, LineState};
use crate::config::MachineConfig;
use crate::directory::{home_of, Directory};
use crate::protocol::Kernel;
use crate::stats::{class_index, LevelStats, ProcStats, SimStats};

pub(crate) struct Node {
    pub(crate) l1: Cache,
    pub(crate) l2: Cache,
}

/// A machine whose cache and directory state persists across runs — warm one
/// query, then measure the next, as the paper's inter-query reuse experiment
/// does.
///
/// # Example
///
/// ```
/// use dss_memsim::{Machine, MachineConfig};
/// use dss_trace::{DataClass, Tracer};
///
/// let tracer = Tracer::new(0);
/// tracer.busy(10);
/// tracer.read(dss_shmem::SHARED_BASE, 8, DataClass::Data);
/// let trace = tracer.take();
///
/// let mut machine = Machine::new(MachineConfig::baseline());
/// let stats = machine.run(&[trace]);
/// assert_eq!(stats.l1.read_misses.total(), 1); // cold miss
/// ```
pub struct Machine {
    cfg: MachineConfig,
    /// The pure transition kernel deciding every coherence transaction
    /// (`crate::protocol`) — the same kernel `dss-check model` explores
    /// exhaustively, so the simulator cannot drift from the checked protocol.
    kernel: Kernel,
    pub(crate) nodes: Vec<Node>,
    pub(crate) dir: Directory,
    /// Held metalocks as `(lock word, holder)`. A handful of distinct lock
    /// words exist (`LockMgrLock`, `BufMgrLock`, the odd metalock), so a
    /// linear scan over a small vector beats hashing on the lock path and
    /// keeps the hot loop free of hashed containers.
    locks: Vec<(u64, usize)>,
    /// Reusable per-processor run state. Hoisted out of [`Machine::run`] so
    /// that, once a run has grown these buffers, subsequent runs (through
    /// [`Machine::run_into`]) never touch the heap — the steady-state
    /// property `dss-check alloc` measures.
    scratch: Vec<ProcScratch>,
    /// Reusable scheduler heap (same rationale as `scratch`).
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    /// Reusable per-processor block buffers for [`Machine::run_source`]: the
    /// streaming run replays one block per processor at a time, refilling
    /// these in place, so peak memory stays bounded by the block size — not
    /// the trace length — and steady-state streaming runs stay heap-quiet.
    blocks: Vec<Trace>,
    /// When armed (test-only `alloc-probe` feature), every simulated event
    /// performs one deliberate heap allocation so the allocation audit's
    /// negative test can prove the gate fires.
    #[cfg(feature = "alloc-probe")]
    probe_allocs: bool,
    // Geometry hoisted out of the per-event paths.
    pub(crate) l1_line: u64,
    pub(crate) l2_line: u64,
    pub(crate) l2_line_mask: u64,
    prefetches_issued: u64,
    prefetches_filled: u64,
    /// First coherence-invariant violation observed by the per-transaction
    /// hook (only compiled under `check-invariants`; boxed so the default
    /// path never grows).
    #[cfg(feature = "check-invariants")]
    violation: Option<Box<crate::verify::CoherenceViolation>>,
}

/// Per-processor run state. Holds no reference to the trace it replays (the
/// run loop passes the trace alongside), so the machine can keep these
/// between runs and reuse their buffers.
#[derive(Default)]
struct ProcScratch {
    /// The node this trace executes on.
    node: usize,
    pos: usize,
    clock: u64,
    /// Pending write-buffer entries: (L2 line, completion time), in issue
    /// order (completions are monotone).
    wb: VecDeque<(u64, u64)>,
    stats: ProcStats,
}

impl ProcScratch {
    /// Resets for a fresh run on node `node`, keeping buffer capacity.
    fn reset(&mut self, node: usize) {
        self.node = node;
        self.pos = 0;
        self.clock = 0;
        self.wb.clear();
        self.stats = ProcStats::default();
    }

    fn retire_wb(&mut self) {
        while let Some(&(_, complete)) = self.wb.front() {
            if complete <= self.clock {
                self.wb.pop_front();
            } else {
                break;
            }
        }
    }

    fn charge_mem(&mut self, class: DataClass, cycles: u64) {
        self.stats.mem_stall += cycles;
        self.stats.stall_by_class[class_index(class)] += cycles;
    }
}

impl Machine {
    /// Builds a machine with cold caches.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.validate();
        let nodes = (0..cfg.nprocs)
            .map(|_| Node {
                l1: Cache::new(cfg.l1),
                l2: Cache::new(cfg.l2),
            })
            .collect();
        Machine {
            nodes,
            kernel: Kernel::new(cfg.protocol),
            dir: Directory::with_line_size(cfg.l2.line),
            // Lock acquisition follows a strict per-processor stack discipline
            // (enforced by the trace layer's `check_lock_discipline`), so at
            // most a few locks per processor are held at once. Reserving that
            // bound up front keeps `run` heap-silent even when warm-cache
            // timing overlaps more lock holds than the cold first run did.
            locks: Vec::with_capacity(4 * cfg.nprocs),
            scratch: Vec::new(),
            ready: BinaryHeap::new(),
            blocks: Vec::new(),
            #[cfg(feature = "alloc-probe")]
            probe_allocs: false,
            l1_line: cfg.l1.line,
            l2_line: cfg.l2.line,
            l2_line_mask: !(cfg.l2.line - 1),
            prefetches_issued: 0,
            prefetches_filled: 0,
            #[cfg(feature = "check-invariants")]
            violation: None,
            cfg,
        }
    }

    /// The holder of the metalock at `addr`, if any.
    fn lock_holder(&self, addr: u64) -> Option<usize> {
        self.locks
            .iter()
            .find(|&&(a, _)| a == addr)
            .map(|&(_, holder)| holder)
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Runs one trace per processor to completion and returns the statistics
    /// of this run. Cache and directory contents persist into the next call
    /// (use a fresh [`Machine`] for cold-start numbers); clocks, write
    /// buffers, and locks reset per run.
    ///
    /// # Panics
    ///
    /// Panics if more traces than processors are supplied, or if a lock
    /// release does not match its holder.
    pub fn run(&mut self, traces: &[Trace]) -> SimStats {
        let mut stats = SimStats::default();
        self.run_into(traces, &mut stats);
        stats
    }

    /// [`Machine::run`] into a caller-owned [`SimStats`], overwriting it.
    ///
    /// This is the allocation-free form: all per-run state lives in buffers
    /// the machine reuses between runs, so once one run has grown them (and
    /// the caches' lazily paged tables have seen the trace's address
    /// footprint), subsequent runs perform **zero** heap allocations —
    /// `dss-check alloc` measures exactly this with a counting allocator.
    /// [`Machine::run`] is a convenience wrapper that allocates one fresh
    /// `SimStats` per call.
    ///
    /// # Panics
    ///
    /// As [`Machine::run`].
    pub fn run_into(&mut self, traces: &[Trace], out: &mut SimStats) {
        assert!(
            traces.len() <= self.cfg.nprocs,
            "more traces than processors"
        );
        self.locks.clear();
        // Move the reusable buffers out of `self` so the run loop can borrow
        // them mutably alongside `&mut self`; they go back at the end.
        let mut scratch = std::mem::take(&mut self.scratch);
        while scratch.len() < traces.len() {
            scratch.push(ProcScratch::default());
        }
        let mut seen: u128 = 0;
        for (rp, t) in scratch.iter_mut().zip(traces) {
            assert!(
                t.proc_id < self.cfg.nprocs,
                "trace for processor {} on a {}-processor machine",
                t.proc_id,
                self.cfg.nprocs
            );
            assert!(
                seen & (1 << t.proc_id) == 0,
                "two traces for processor {}",
                t.proc_id
            );
            seen |= 1 << t.proc_id;
            rp.reset(t.proc_id);
            // The write buffer never holds more than `cfg.write_buffer`
            // entries (overflow stalls instead), but warm-cache timing can
            // fill it deeper than the cold first run did — reserve the full
            // bound now so later runs never grow it mid-loop.
            rp.wb.reserve(self.cfg.write_buffer);
        }
        let mut l1s = LevelStats::default();
        let mut l2s = LevelStats::default();

        // Deterministic interleave: the unfinished processor with the
        // smallest clock (ties by position) executes its next event. Each
        // live processor has exactly one heap entry, re-keyed after its step,
        // so pop order reproduces the former full scan exactly. A lone trace
        // needs no arbitration at all.
        if let ([rp], [trace]) = (&mut scratch[..traces.len()], traces) {
            let node = rp.node;
            while rp.pos < trace.events.len() {
                self.step(node, trace, rp, &mut l1s, &mut l2s);
            }
        } else {
            let mut ready = std::mem::take(&mut self.ready);
            ready.clear();
            for (i, (rp, trace)) in scratch.iter().zip(traces).enumerate() {
                if rp.pos < trace.events.len() {
                    ready.push(Reverse((rp.clock, i)));
                }
            }
            while let Some(Reverse((_, i))) = ready.pop() {
                let rp = &mut scratch[i];
                let trace = &traces[i];
                let node = rp.node;
                self.step(node, trace, rp, &mut l1s, &mut l2s);
                if rp.pos < trace.events.len() {
                    ready.push(Reverse((rp.clock, i)));
                }
            }
            self.ready = ready;
        }

        out.procs.clear();
        out.procs.resize(self.cfg.nprocs, ProcStats::default());
        for rp in &mut scratch[..traces.len()] {
            // Drain the write buffer into the final time.
            if let Some(&(_, complete)) = rp.wb.back() {
                rp.clock = rp.clock.max(complete);
            }
            rp.stats.cycles = rp.clock;
            out.procs[rp.node] = rp.stats;
        }
        out.l1 = l1s;
        out.l2 = l2s;
        out.prefetches_issued = std::mem::take(&mut self.prefetches_issued);
        out.prefetches_filled = std::mem::take(&mut self.prefetches_filled);
        self.scratch = scratch;
    }

    /// Runs a streaming [`TraceSource`] to completion: each processor's
    /// events are consumed one block at a time, so peak memory is bounded by
    /// the block size regardless of trace length. Identical in every
    /// simulated respect to materializing the source and calling
    /// [`Machine::run`] — block boundaries carry no timing — which the
    /// equivalence tests pin bit-for-bit.
    ///
    /// # Errors
    ///
    /// Propagates the first [`TraceError`] from the source (truncated or
    /// corrupt block stream, I/O failure). Cache state reflects the events
    /// already replayed; use a fresh machine after an error.
    ///
    /// # Panics
    ///
    /// As [`Machine::run`].
    pub fn run_source(&mut self, src: &dyn TraceSource) -> Result<SimStats, TraceError> {
        let mut stats = SimStats::default();
        self.run_source_into(src, &mut stats)?;
        Ok(stats)
    }

    /// [`Machine::run_source`] into a caller-owned [`SimStats`], overwriting
    /// it — the buffer-reusing form, like [`Machine::run_into`].
    ///
    /// # Errors
    ///
    /// As [`Machine::run_source`].
    ///
    /// # Panics
    ///
    /// As [`Machine::run`].
    pub fn run_source_into(
        &mut self,
        src: &dyn TraceSource,
        out: &mut SimStats,
    ) -> Result<(), TraceError> {
        let mut streams = src.open()?;
        let n = streams.len();
        assert!(n <= self.cfg.nprocs, "more streams than processors");
        self.locks.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        while scratch.len() < n {
            scratch.push(ProcScratch::default());
        }
        let mut blocks = std::mem::take(&mut self.blocks);
        while blocks.len() < n {
            blocks.push(Trace::default());
        }
        let mut ready = std::mem::take(&mut self.ready);
        ready.clear();
        let mut l1s = LevelStats::default();
        let mut l2s = LevelStats::default();

        // The replay loop proper, in a closure so an early stream error can
        // still hand the reusable buffers back to the machine below.
        let result = (|| -> Result<(), TraceError> {
            let mut seen: u128 = 0;
            for i in 0..n {
                let proc_id = streams[i].proc_id();
                assert!(
                    proc_id < self.cfg.nprocs,
                    "stream for processor {} on a {}-processor machine",
                    proc_id,
                    self.cfg.nprocs
                );
                assert!(
                    seen & (1 << proc_id) == 0,
                    "two streams for processor {proc_id}"
                );
                seen |= 1 << proc_id;
                let rp = &mut scratch[i];
                rp.reset(proc_id);
                rp.wb.reserve(self.cfg.write_buffer);
                blocks[i].proc_id = proc_id;
                if streams[i].next_block(&mut blocks[i].events)? > 0 {
                    ready.push(Reverse((rp.clock, i)));
                }
            }
            // Same deterministic interleave as `run_into`: block boundaries
            // only decide when a refill happens, never who steps next.
            while let Some(Reverse((_, i))) = ready.pop() {
                let rp = &mut scratch[i];
                let node = rp.node;
                self.step(node, &blocks[i], rp, &mut l1s, &mut l2s);
                let rp = &mut scratch[i];
                if rp.pos == blocks[i].events.len()
                    && streams[i].next_block(&mut blocks[i].events)? > 0
                {
                    rp.pos = 0;
                }
                if rp.pos < blocks[i].events.len() {
                    ready.push(Reverse((rp.clock, i)));
                }
            }
            Ok(())
        })();
        ready.clear();
        self.ready = ready;
        self.blocks = blocks;
        if result.is_err() {
            self.scratch = scratch;
            return result;
        }

        out.procs.clear();
        out.procs.resize(self.cfg.nprocs, ProcStats::default());
        for rp in &mut scratch[..n] {
            if let Some(&(_, complete)) = rp.wb.back() {
                rp.clock = rp.clock.max(complete);
            }
            rp.stats.cycles = rp.clock;
            out.procs[rp.node] = rp.stats;
        }
        out.l1 = l1s;
        out.l2 = l2s;
        out.prefetches_issued = std::mem::take(&mut self.prefetches_issued);
        out.prefetches_filled = std::mem::take(&mut self.prefetches_filled);
        self.scratch = scratch;
        Ok(())
    }

    /// Verifies the structural invariants of the cache hierarchy and
    /// directory; intended for tests (cheap relative to a simulation run).
    /// The non-panicking form is [`Machine::verify_coherence`].
    ///
    /// # Panics
    ///
    /// Panics if L1/L2 inclusion is violated, a line is writable in two
    /// nodes, or cache line states disagree with the directory.
    pub fn check_invariants(&self) {
        if let Err(v) = self.verify_coherence() {
            panic!("{v}");
        }
    }

    fn step(
        &mut self,
        p: usize,
        trace: &Trace,
        rp: &mut ProcScratch,
        l1s: &mut LevelStats,
        l2s: &mut LevelStats,
    ) {
        // The deliberate allocation the audit's negative test injects; off
        // (and compiled out) everywhere else.
        #[cfg(feature = "alloc-probe")]
        if self.probe_allocs {
            let probe: Vec<u64> = Vec::with_capacity(1);
            std::hint::black_box(&probe);
        }
        let event = trace.events[rp.pos];
        match event {
            Event::Busy(n) => {
                rp.clock += n as u64;
                rp.stats.busy += n as u64;
                rp.pos += 1;
            }
            Event::Ref(r) if !r.write => {
                self.wait_for_pending_write(rp, r.addr, r.class);
                let stall = self.read_access(p, r.addr, r.class, l1s, l2s);
                rp.clock += 1 + stall;
                rp.stats.busy += 1;
                rp.charge_mem(r.class, stall);
                if r.class == DataClass::Data && self.cfg.prefetch_data_lines > 0 {
                    self.prefetch_from(p, r.addr);
                }
                rp.pos += 1;
            }
            Event::Ref(r) => {
                let service = self.write_service(p, r.addr, r.class, l1s, l2s);
                if service > 0 {
                    self.push_wb(rp, r.addr, service, r.class);
                }
                rp.clock += 1;
                rp.stats.busy += 1;
                if r.class == DataClass::Data && self.cfg.prefetch_data_lines > 0 {
                    self.prefetch_from(p, r.addr);
                }
                rp.pos += 1;
            }
            Event::LockAcquire(tok) => {
                let class = tok.class.data_class();
                match self.lock_holder(tok.addr) {
                    Some(holder) if holder != p => {
                        // Spin: poll the lock word, then back off. All time
                        // spent here is the paper's MSync.
                        let stall = self.read_access(p, tok.addr, class, l1s, l2s);
                        let wait = 1 + stall + self.cfg.spin_interval;
                        rp.clock += wait;
                        rp.stats.msync += wait;
                        // Do not advance: retry the acquire.
                    }
                    _ => {
                        // Free: acquire with a blocking read-modify-write.
                        // Its miss latency is ordinary memory stall on the
                        // lock's data structure (the paper's Metadata time).
                        let service = self.write_service(p, tok.addr, class, l1s, l2s);
                        rp.clock += 1 + service;
                        rp.stats.busy += 1;
                        rp.charge_mem(class, service);
                        if self.lock_holder(tok.addr).is_none() {
                            self.locks.push((tok.addr, p));
                        }
                        rp.pos += 1;
                    }
                }
            }
            Event::LockRelease(tok) => {
                let class = tok.class.data_class();
                let holder = self
                    .locks
                    .iter()
                    .position(|&(a, _)| a == tok.addr)
                    .map(|i| self.locks.swap_remove(i).1);
                assert_eq!(holder, Some(p), "lock released by non-holder");
                let service = self.write_service(p, tok.addr, class, l1s, l2s);
                if service > 0 {
                    self.push_wb(rp, tok.addr, service, class);
                }
                rp.clock += 1;
                rp.stats.busy += 1;
                rp.pos += 1;
            }
        }
        // The observer hook: after every completed transaction, check the
        // directory protocol's invariants on the line the event touched.
        // Compiled out by default so the hot loop stays exactly as profiled.
        #[cfg(feature = "check-invariants")]
        self.observe(event, rp.clock);
    }

    /// Per-transaction invariant hook (see [`crate::verify`]): records the
    /// first violation involving the line the event touched.
    #[cfg(feature = "check-invariants")]
    fn observe(&mut self, event: Event, clock: u64) {
        if self.violation.is_some() {
            return;
        }
        let addr = match event {
            Event::Ref(r) => r.addr,
            Event::LockAcquire(tok) | Event::LockRelease(tok) => tok.addr,
            Event::Busy(_) => return,
        };
        if let Err(mut v) = self.verify_line(addr & self.l2_line_mask) {
            v.clock = clock;
            self.violation = Some(Box::new(v));
        }
    }

    /// The first coherence violation seen by the per-transaction observer
    /// hook, if any (only present under the `check-invariants` feature).
    #[cfg(feature = "check-invariants")]
    pub fn first_violation(&self) -> Option<&crate::verify::CoherenceViolation> {
        self.violation.as_deref()
    }

    /// Takes (and clears) the first recorded coherence violation, so a
    /// persistent machine can be checked run by run.
    #[cfg(feature = "check-invariants")]
    pub fn take_violation(&mut self) -> Option<crate::verify::CoherenceViolation> {
        self.violation.take().map(|b| *b)
    }

    /// Arms a deliberate per-event heap allocation (test-only `alloc-probe`
    /// feature), so the allocation audit's negative test can prove the
    /// counting gate fires when the hot loop regresses.
    #[cfg(feature = "alloc-probe")]
    pub fn arm_alloc_probe(&mut self) {
        self.probe_allocs = true;
    }

    /// A read must wait for a pending write-buffer entry to the same line.
    fn wait_for_pending_write(&self, rp: &mut ProcScratch, addr: u64, class: DataClass) {
        let line = addr & self.l2_line_mask;
        if let Some(&(_, complete)) = rp
            .wb
            .iter()
            .find(|(l, complete)| *l == line && *complete > rp.clock)
        {
            let wait = complete - rp.clock;
            rp.clock = complete;
            rp.charge_mem(class, wait);
        }
        rp.retire_wb();
    }

    fn push_wb(&self, rp: &mut ProcScratch, addr: u64, service: u64, class: DataClass) {
        rp.retire_wb();
        if rp.wb.len() >= self.cfg.write_buffer {
            // Overflow: stall until the oldest entry drains (the paper's
            // write-buffer-overflow component of Mem).
            if let Some(&(_, earliest)) = rp.wb.front() {
                let wait = earliest.saturating_sub(rp.clock);
                rp.clock += wait;
                rp.charge_mem(class, wait);
                rp.retire_wb();
            }
        }
        let line = addr & self.l2_line_mask;
        let start = rp
            .wb
            .back()
            .map(|&(_, c)| c)
            .unwrap_or(rp.clock)
            .max(rp.clock);
        rp.wb.push_back((line, start + service));
    }

    /// Resolves a load: returns the stall beyond the 1-cycle issue slot.
    fn read_access(
        &mut self,
        p: usize,
        addr: u64,
        class: DataClass,
        l1s: &mut LevelStats,
        l2s: &mut LevelStats,
    ) -> u64 {
        l1s.read_accesses += 1;
        if self.nodes[p].l1.lookup(addr).is_some() {
            return 0;
        }
        // `record_miss` classifies and marks the line seen in one probe; the
        // fill below makes it resident, so the mark is never observed early.
        let kind1 = self.nodes[p].l1.record_miss(addr);
        l1s.read_misses.add(class, kind1);
        l2s.read_accesses += 1;
        if let Some(state) = self.nodes[p].l2.lookup(addr) {
            self.fill_l1(p, addr, state);
            return self.cfg.lat.l2;
        }
        let kind2 = self.nodes[p].l2.record_miss(addr);
        l2s.read_misses.add(class, kind2);
        let (stall, state) = self.remote_read(p, addr);
        self.fill_l2(p, addr, state);
        self.fill_l1(p, addr, state);
        stall
    }

    /// Directory transaction for a load that missed both private caches.
    /// The kernel decides the transaction shape (downgrade target, dirty
    /// forwarding, install state); this method applies it and prices the
    /// hops. Returns the stall and the state to install.
    fn remote_read(&mut self, p: usize, addr: u64) -> (u64, LineState) {
        let line = addr & self.l2_line_mask;
        let home = home_of(addr, self.cfg.nprocs);
        let entry = self.dir.entry(line);
        let owner_dirty = match entry.owner {
            Some(owner) if owner != p => self.nodes[owner]
                .l2
                .peek_state(line)
                .map(LineState::dirty)
                .unwrap_or(false),
            _ => false,
        };
        let rm = self.kernel.read_miss(entry, p, owner_dirty);
        if let Some(owner) = rm.downgrade {
            self.downgrade(owner, line);
        }
        // Dirty copies are forwarded (3-hop when the home is a third node);
        // clean owners just downgrade, with the home supplying the data.
        let lat = if rm.dirty_forward {
            if home == p {
                self.cfg.lat.remote2
            } else {
                self.cfg.lat.remote3
            }
        } else if home == p {
            self.cfg.lat.local
        } else {
            self.cfg.lat.remote2
        };
        if rm.install == LineState::Exclusive {
            self.dir.record_exclusive(line, p);
        } else {
            self.dir.record_read(line, p);
        }
        (lat, rm.install)
    }

    /// Resolves a store: returns the write-buffer service latency
    /// (0 = completed immediately against an exclusive line).
    fn write_service(
        &mut self,
        p: usize,
        addr: u64,
        class: DataClass,
        l1s: &mut LevelStats,
        l2s: &mut LevelStats,
    ) -> u64 {
        let _ = class;
        l1s.write_accesses += 1;
        match self.nodes[p].l1.lookup(addr) {
            Some(state) if state.writable() => {
                // MESI: the first write to an Exclusive line completes
                // silently; promote both levels to Modified.
                if state == LineState::Exclusive {
                    let line = addr & self.l2_line_mask;
                    self.nodes[p].l2.set_state(line, LineState::Modified);
                    self.nodes[p].l1.set_state(addr, LineState::Modified);
                }
                return 0;
            }
            Some(_) => {}
            None => l1s.write_misses += 1,
        }
        l2s.write_accesses += 1;
        let line = addr & self.l2_line_mask;
        let home = home_of(addr, self.cfg.nprocs);
        let service = match self.nodes[p].l2.lookup(addr) {
            Some(LineState::Modified) => self.cfg.lat.l2,
            Some(LineState::Exclusive) => {
                // Silent upgrade (MESI): no coherence transaction.
                self.nodes[p].l2.set_state(line, LineState::Modified);
                self.cfg.lat.l2
            }
            Some(LineState::Shared) => {
                // Upgrade: invalidate the other sharers through the home.
                let inv = self.dir.record_write(line, p);
                self.invalidate_nodes(inv, line);
                if home == p {
                    self.cfg.lat.local
                } else {
                    self.cfg.lat.remote2
                }
            }
            None => {
                l2s.write_misses += 1;
                let entry = self.dir.entry(line);
                let wt = self.kernel.write_transaction(entry, p);
                let inv = self.dir.record_write(line, p);
                debug_assert_eq!(inv, wt.invalidate, "directory and kernel disagree");
                self.invalidate_nodes(inv, line);
                if wt.remote_owner {
                    if home == p {
                        self.cfg.lat.remote2
                    } else {
                        self.cfg.lat.remote3
                    }
                } else if home == p {
                    self.cfg.lat.local
                } else {
                    self.cfg.lat.remote2
                }
            }
        };
        self.fill_l2(p, addr, LineState::Modified);
        self.fill_l1(p, addr, LineState::Modified);
        service
    }

    /// Invalidates `line` in every node set in `mask` (a bitmask from
    /// [`Directory::record_write`]); nodes are independent, so bit order is
    /// immaterial.
    fn invalidate_nodes(&mut self, mask: u64, line: u64) {
        let mut m = mask;
        while m != 0 {
            let q = m.trailing_zeros() as usize;
            m &= m - 1;
            self.nodes[q].l2.invalidate(line);
            let mut a = line;
            while a < line + self.l2_line {
                self.nodes[q].l1.invalidate(a);
                a += self.l1_line;
            }
        }
    }

    fn downgrade(&mut self, owner: usize, line: u64) {
        self.nodes[owner].l2.downgrade(line);
        let mut a = line;
        while a < line + self.l2_line {
            self.nodes[owner].l1.downgrade(a);
            a += self.l1_line;
        }
    }

    fn fill_l2(&mut self, p: usize, addr: u64, state: LineState) {
        if let Some((victim, _dirty)) = self.nodes[p].l2.insert(addr, state) {
            // Inclusion: the victim's L1 lines leave too; the directory
            // forgets this node (dirty victims write back at no charged cost).
            self.dir.record_drop(victim, p);
            let mut a = victim;
            while a < victim + self.l2_line {
                self.nodes[p].l1.evict_for_inclusion(a);
                a += self.l1_line;
            }
        }
    }

    fn fill_l1(&mut self, p: usize, addr: u64, state: LineState) {
        // L1 victims stay resident in L2, so no directory action.
        let _ = self.nodes[p].l1.insert(addr, state);
    }

    /// The paper's Section 6 prefetcher: on an access to database data,
    /// fetch the next N primary-cache lines into L1 (stopping at the 8 KB
    /// buffer-block boundary), in the background (no processor stall).
    fn prefetch_from(&mut self, p: usize, addr: u64) {
        let base = self.nodes[p].l1.line_of(addr);
        for i in 1..=self.cfg.prefetch_data_lines as u64 {
            let pf = base + i * self.l1_line;
            if pf >> 13 != addr >> 13 {
                break;
            }
            self.prefetches_issued += 1;
            if self.nodes[p].l1.contains(pf) {
                continue;
            }
            if self.nodes[p].l2.contains(pf) {
                self.fill_l1(p, pf, LineState::Shared);
                self.prefetches_filled += 1;
                continue;
            }
            let line = pf & self.l2_line_mask;
            let entry = self.dir.entry(line);
            if matches!(entry.owner, Some(o) if o != p) {
                // Dirty elsewhere: the simple prefetcher skips it.
                continue;
            }
            self.dir.record_read(line, p);
            self.fill_l2(p, pf, LineState::Shared);
            self.fill_l1(p, pf, LineState::Shared);
            self.prefetches_filled += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::MissKind;
    use dss_shmem::SHARED_BASE;
    use dss_trace::{LockClass, LockToken, Tracer};

    fn machine() -> Machine {
        Machine::new(MachineConfig::baseline())
    }

    #[test]
    fn cold_miss_then_hit() {
        let t = Tracer::new(0);
        t.read(SHARED_BASE, 8, DataClass::Data);
        t.read(SHARED_BASE + 8, 8, DataClass::Data); // same L1 line
        t.read(SHARED_BASE + 64, 8, DataClass::Data); // new L2 line
        let stats = machine().run(&[t.take()]);
        assert_eq!(stats.l1.read_accesses, 3);
        assert_eq!(stats.l1.read_misses.total(), 2);
        assert_eq!(stats.l1.read_misses.get(DataClass::Data, MissKind::Cold), 2);
        assert_eq!(stats.l2.read_misses.total(), 2);
    }

    #[test]
    fn local_vs_remote_latency() {
        // SHARED_BASE's page has home node 0.
        let t0 = Tracer::new(0);
        t0.read(SHARED_BASE, 8, DataClass::Data);
        let t1 = Tracer::new(1);
        t1.read(SHARED_BASE + 8192 * 4, 8, DataClass::Data); // also home 0
        let stats = machine().run(&[t0.take(), t1.take()]);
        assert_eq!(stats.procs[0].mem_stall, 80, "local memory");
        assert_eq!(stats.procs[1].mem_stall, 249, "2-hop remote");
    }

    #[test]
    fn dirty_third_node_is_three_hops() {
        let addr = SHARED_BASE + 8192; // home node 1
        let tw = Tracer::new(0);
        tw.write(addr, 8, DataClass::Data);
        let tr = Tracer::new(2);
        tr.busy(10_000); // ensure the write happens first
        tr.read(addr, 8, DataClass::Data);
        let stats = machine().run(&[tw.take(), tr.take()]);
        assert_eq!(stats.procs[2].mem_stall, 351, "dirty in third node");
    }

    #[test]
    fn coherence_miss_after_remote_write() {
        let addr = SHARED_BASE;
        // Proc 0 reads, proc 1 writes (invalidating 0), proc 0 rereads.
        let t0 = Tracer::new(0);
        t0.read(addr, 8, DataClass::LockHash);
        t0.busy(100_000);
        t0.read(addr, 8, DataClass::LockHash);
        let t1 = Tracer::new(1);
        t1.busy(50_000);
        t1.write(addr, 8, DataClass::LockHash);
        let stats = machine().run(&[t0.take(), t1.take()]);
        assert_eq!(
            stats
                .l2
                .read_misses
                .get(DataClass::LockHash, MissKind::Coherence),
            1,
            "reread after invalidation is a coherence miss"
        );
    }

    #[test]
    fn conflict_misses_in_direct_mapped_l1() {
        let t = Tracer::new(0);
        // Two addresses 4 KB apart collide in the 4 KB direct-mapped L1 but
        // coexist in the 2-way L2.
        for _ in 0..4 {
            t.read(SHARED_BASE, 8, DataClass::PrivHeap);
            t.read(SHARED_BASE + 4096, 8, DataClass::PrivHeap);
        }
        let stats = machine().run(&[t.take()]);
        let conf = stats
            .l1
            .read_misses
            .get(DataClass::PrivHeap, MissKind::Conflict);
        assert_eq!(conf, 6, "all but the two cold misses conflict");
        assert_eq!(stats.l2.read_misses.total(), 2, "L2 holds both");
    }

    #[test]
    fn write_buffer_absorbs_writes_until_full() {
        let t = Tracer::new(0);
        for i in 0..16 {
            t.write(SHARED_BASE + i * 4096 * 31, 8, DataClass::PrivHeap);
        }
        let few = machine().run(&[t.take()]);
        // 16 writes fit the buffer: no memory stall, 1 cycle each.
        assert_eq!(few.procs[0].mem_stall, 0);
        assert_eq!(few.procs[0].busy, 16);

        let t = Tracer::new(0);
        for i in 0..40 {
            t.write(SHARED_BASE + i * 4096 * 31, 8, DataClass::PrivHeap);
        }
        let many = machine().run(&[t.take()]);
        assert!(many.procs[0].mem_stall > 0, "overflow stalls the processor");
    }

    #[test]
    fn read_waits_for_pending_write_to_same_line() {
        let t = Tracer::new(0);
        t.write(SHARED_BASE, 8, DataClass::Data);
        t.read(SHARED_BASE + 8, 8, DataClass::Data);
        let stats = machine().run(&[t.take()]);
        // The read waited for the buffered write to drain (then hit).
        assert!(stats.procs[0].mem_stall > 0);
        assert_eq!(stats.l1.read_misses.total(), 0, "line filled by the write");
    }

    #[test]
    fn contended_lock_spins_into_msync() {
        let tok = LockToken::new(SHARED_BASE + 64, LockClass::LockMgr);
        let t0 = Tracer::new(0);
        t0.lock_acquire(tok);
        t0.busy(5_000);
        t0.lock_release(tok);
        let t1 = Tracer::new(1);
        t1.lock_acquire(tok);
        t1.lock_release(tok);
        let stats = machine().run(&[t0.take(), t1.take()]);
        assert_eq!(stats.procs[0].msync, 0, "uncontended holder");
        assert!(stats.procs[1].msync >= 4_000, "waiter spins while held");
        // The spinning produced lock-word traffic in the stats.
        assert!(stats.l1.read_accesses > 0);
    }

    #[test]
    fn lock_transfer_causes_coherence_misses_on_lock_word() {
        let tok = LockToken::new(SHARED_BASE + 64, LockClass::LockMgr);
        // Two processors ping-pong the lock without overlapping.
        let t0 = Tracer::new(0);
        t0.lock_acquire(tok);
        t0.lock_release(tok);
        t0.busy(100_000);
        t0.lock_acquire(tok);
        t0.lock_release(tok);
        let t1 = Tracer::new(1);
        t1.busy(50_000);
        t1.lock_acquire(tok);
        t1.lock_release(tok);
        let stats = machine().run(&[t0.take(), t1.take()]);
        // Proc 0's second acquire finds its copy invalidated by proc 1.
        assert!(stats.l2.write_misses > 0 || stats.l2.read_misses.total() > 0);
        let meta_stall: u64 = stats.total(|p| p.stall_of(DataClass::LockMgrLock));
        assert!(meta_stall > 0, "lock RMW misses charge Metadata mem time");
    }

    #[test]
    #[should_panic(expected = "released by non-holder")]
    fn mismatched_release_panics() {
        let tok = LockToken::new(SHARED_BASE + 64, LockClass::BufMgr);
        let t = Tracer::new(0);
        t.lock_release(tok);
        machine().run(&[t.take()]);
    }

    #[test]
    fn warm_run_keeps_cache_contents() {
        let addr = SHARED_BASE;
        let make = || {
            let t = Tracer::new(0);
            for i in 0..64 {
                t.read(addr + i * 64, 8, DataClass::Data);
            }
            t.take()
        };
        let mut m = machine();
        let cold = m.run(&[make()]);
        assert_eq!(cold.l2.read_misses.total(), 64);
        let warm = m.run(&[make()]);
        assert_eq!(warm.l2.read_misses.total(), 0, "all lines still resident");
        assert!(warm.exec_cycles() < cold.exec_cycles());
    }

    #[test]
    fn prefetch_eliminates_sequential_data_misses() {
        let make = || {
            let t = Tracer::new(0);
            for i in 0..512 {
                t.read(SHARED_BASE + i * 16, 8, DataClass::Data); // sequential 8 KB
            }
            t.take()
        };
        let base = Machine::new(MachineConfig::baseline()).run(&[make()]);
        let pf = Machine::new(MachineConfig::baseline().with_data_prefetch(4)).run(&[make()]);
        assert!(pf.prefetches_issued > 0);
        assert!(
            pf.l1.read_misses.by_class(DataClass::Data)
                < base.l1.read_misses.by_class(DataClass::Data) / 2,
            "prefetching removes most sequential data misses ({} vs {})",
            pf.l1.read_misses.by_class(DataClass::Data),
            base.l1.read_misses.by_class(DataClass::Data)
        );
        assert!(pf.exec_cycles() < base.exec_cycles());
    }

    #[test]
    fn prefetch_stops_at_page_boundary() {
        let t = Tracer::new(0);
        // Read the last line of a page: no prefetch may cross into the next.
        t.read(SHARED_BASE + 8192 - 32, 8, DataClass::Data);
        let mut m = Machine::new(MachineConfig::baseline().with_data_prefetch(4));
        let stats = m.run(&[t.take()]);
        assert_eq!(stats.prefetches_issued, 0);
    }

    #[test]
    fn busy_time_accumulates() {
        let t = Tracer::new(0);
        t.busy(100);
        t.read(SHARED_BASE, 8, DataClass::Data);
        let stats = machine().run(&[t.take()]);
        assert_eq!(stats.procs[0].busy, 101);
        assert_eq!(stats.procs[0].cycles, 101 + 80);
    }

    #[test]
    fn mesi_sole_reader_writes_silently() {
        let make = || {
            let t = Tracer::new(0);
            t.read(SHARED_BASE, 8, DataClass::PrivHeap);
            t.write(SHARED_BASE, 8, DataClass::PrivHeap);
            t.take()
        };
        let msi = Machine::new(MachineConfig::baseline()).run(&[make()]);
        let mesi = Machine::new(MachineConfig::baseline().with_protocol(crate::Protocol::Mesi))
            .run(&[make()]);
        // Under MSI the write upgrades through the directory; under MESI the
        // Exclusive line absorbs it without any L2 transaction.
        assert_eq!(msi.l2.write_accesses, 1);
        assert_eq!(mesi.l2.write_accesses, 0);
        assert!(mesi.exec_cycles() <= msi.exec_cycles());
    }

    #[test]
    fn mesi_second_reader_downgrades_clean_copy() {
        let addr = SHARED_BASE; // home node 0
        let t0 = Tracer::new(0);
        t0.read(addr, 8, DataClass::Data);
        let t1 = Tracer::new(1);
        t1.busy(10_000);
        t1.read(addr, 8, DataClass::Data);
        let stats = Machine::new(MachineConfig::baseline().with_protocol(crate::Protocol::Mesi))
            .run(&[t0.take(), t1.take()]);
        // The copy was Exclusive but clean: a 2-hop transfer, not 3-hop.
        assert_eq!(stats.procs[1].mem_stall, 249);
    }

    #[test]
    fn mesi_write_invalidates_exclusive_reader() {
        let addr = SHARED_BASE;
        let t0 = Tracer::new(0);
        t0.read(addr, 8, DataClass::Data);
        t0.busy(100_000);
        t0.read(addr, 8, DataClass::Data);
        let t1 = Tracer::new(1);
        t1.busy(50_000);
        t1.write(addr, 8, DataClass::Data);
        let stats = Machine::new(MachineConfig::baseline().with_protocol(crate::Protocol::Mesi))
            .run(&[t0.take(), t1.take()]);
        assert_eq!(
            stats
                .l2
                .read_misses
                .get(DataClass::Data, crate::MissKind::Coherence),
            1,
            "proc 0's exclusive copy must be invalidated by proc 1's write"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let make_traces = || {
            let mut out = Vec::new();
            for p in 0..4 {
                let t = Tracer::new(p);
                for i in 0..200 {
                    t.read(
                        SHARED_BASE + ((i * 37 + p as u64 * 11) % 4096) * 8,
                        8,
                        DataClass::Data,
                    );
                    t.busy((i % 7) as u32);
                    t.write(dss_shmem::private_base(p) + i * 16, 8, DataClass::PrivHeap);
                }
                out.push(t.take());
            }
            out
        };
        let a = Machine::new(MachineConfig::baseline()).run(&make_traces());
        let b = Machine::new(MachineConfig::baseline()).run(&make_traces());
        assert_eq!(a.exec_cycles(), b.exec_cycles());
        assert_eq!(a.l1.read_misses, b.l1.read_misses);
        assert_eq!(a.l2.read_misses, b.l2.read_misses);
    }

    /// A materialized-source wrapper with a configurable block size, so the
    /// streaming tests can exercise refills at awkward boundaries.
    struct Chopped<'a> {
        traces: &'a [Trace],
        block: usize,
    }

    struct ChoppedStream<'a> {
        trace: &'a Trace,
        pos: usize,
        block: usize,
    }

    impl dss_trace::EventStream for ChoppedStream<'_> {
        fn proc_id(&self) -> usize {
            self.trace.proc_id
        }

        fn next_block(&mut self, buf: &mut Vec<Event>) -> Result<usize, TraceError> {
            buf.clear();
            let n = (self.trace.events.len() - self.pos).min(self.block);
            buf.extend_from_slice(&self.trace.events[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    impl TraceSource for Chopped<'_> {
        fn nprocs(&self) -> usize {
            self.traces.len()
        }

        fn open(&self) -> Result<Vec<Box<dyn dss_trace::EventStream + '_>>, TraceError> {
            Ok(self
                .traces
                .iter()
                .map(|trace| {
                    Box::new(ChoppedStream {
                        trace,
                        pos: 0,
                        block: self.block,
                    }) as Box<dyn dss_trace::EventStream>
                })
                .collect())
        }
    }

    /// Contended traces: everyone hammers the same lock and lines, so the
    /// interleave exercises parked processors across block refills.
    fn contended_traces(nprocs: usize) -> Vec<Trace> {
        let tok = LockToken::new(SHARED_BASE + 0x40, LockClass::LockMgr);
        (0..nprocs)
            .map(|p| {
                let t = Tracer::new(p);
                for i in 0..300u64 {
                    t.busy((p as u32 + 1) * (i as u32 % 5));
                    t.lock_acquire(tok);
                    t.read(SHARED_BASE + (i % 64) * 8, 8, DataClass::LockHash);
                    t.write(SHARED_BASE + (i % 64) * 8, 8, DataClass::LockHash);
                    t.lock_release(tok);
                    t.write(dss_shmem::private_base(p) + i * 24, 8, DataClass::PrivHeap);
                }
                t.take()
            })
            .collect()
    }

    #[test]
    fn run_source_matches_run_at_any_block_size() {
        let traces = contended_traces(4);
        let materialized = Machine::new(MachineConfig::baseline()).run(&traces);
        // The default materialized adapter…
        let streamed = Machine::new(MachineConfig::baseline())
            .run_source(&&traces[..])
            .expect("materialized source cannot fail");
        assert_eq!(streamed, materialized);
        // …and adversarial block sizes, including 1 (a refill per event) and
        // sizes that split lock-acquire retries across block boundaries.
        for block in [1, 2, 3, 7, 64, 100_000] {
            let streamed = Machine::new(MachineConfig::baseline())
                .run_source(&Chopped {
                    traces: &traces,
                    block,
                })
                .expect("in-memory source cannot fail");
            assert_eq!(streamed, materialized, "block size {block}");
        }
    }

    #[test]
    fn run_source_reuses_buffers_and_matches_warm_run() {
        // Warm-cache equivalence: the second run over the same machine must
        // match run()'s second run, proving cache/directory state carries
        // across streaming runs identically.
        let traces = contended_traces(2);
        let mut m_mat = Machine::new(MachineConfig::baseline());
        let mut m_str = Machine::new(MachineConfig::baseline());
        let first_mat = m_mat.run(&traces);
        let first_str = m_str.run_source(&&traces[..]).unwrap();
        assert_eq!(first_mat, first_str);
        let second_mat = m_mat.run(&traces);
        let second_str = m_str.run_source(&&traces[..]).unwrap();
        assert_eq!(second_mat, second_str);
        assert_ne!(first_mat, second_mat, "warm run differs from cold");
    }

    #[test]
    fn run_source_surfaces_stream_errors() {
        struct Broken;
        struct BrokenStream;
        impl dss_trace::EventStream for BrokenStream {
            fn proc_id(&self) -> usize {
                0
            }
            fn next_block(&mut self, _buf: &mut Vec<Event>) -> Result<usize, TraceError> {
                Err(TraceError::Truncated {
                    offset: 42,
                    expected: "event record",
                    event: None,
                })
            }
        }
        impl TraceSource for Broken {
            fn nprocs(&self) -> usize {
                1
            }
            fn open(&self) -> Result<Vec<Box<dyn dss_trace::EventStream + '_>>, TraceError> {
                Ok(vec![Box::new(BrokenStream)])
            }
        }
        let mut m = machine();
        let err = m.run_source(&Broken).map(|_| ()).unwrap_err();
        assert_eq!(err.kind(), "truncated");
        // The machine is still usable for a fresh run afterwards.
        let traces = contended_traces(1);
        assert_eq!(
            Machine::new(MachineConfig::baseline()).run(&traces),
            m.run(&traces),
            "post-error machine had cold caches (no events were replayed)"
        );
    }
}
