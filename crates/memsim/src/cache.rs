//! A set-associative cache with LRU replacement, MSI line states, and the
//! bookkeeping needed to classify misses as cold, conflict, or coherence.
//!
//! The geometry math is pure shift/mask — [`CacheConfig::validate`] rejects
//! non-power-of-two line sizes and set counts at construction, so `line_of`
//! and `set_of` never divide. Classification state is a per-line history code
//! in a paged flat table ([`crate::paged::PagedMap`]) rather than a
//! `HashSet`/`HashMap` pair: a miss costs one indexed probe
//! ([`Cache::record_miss`]) instead of up to three hash lookups.

use crate::config::CacheConfig;
use crate::paged::PagedMap;

/// MSI coherence state of a resident line.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Shared (clean, possibly in other caches).
    Shared,
    /// Exclusive (clean, sole copy — MESI only).
    Exclusive,
    /// Modified (exclusive dirty).
    Modified,
}

impl LineState {
    /// Whether a local write can proceed without a coherence transaction.
    pub fn writable(self) -> bool {
        matches!(self, LineState::Exclusive | LineState::Modified)
    }

    /// Whether the line holds the only up-to-date copy that must be written
    /// back or supplied on a remote request.
    pub fn dirty(self) -> bool {
        matches!(self, LineState::Modified)
    }
}

/// Why a line most recently left the cache, for miss classification: a line
/// lost to a directory invalidation makes the next miss a coherence miss; a
/// line lost to replacement makes it a conflict miss (the paper folds
/// capacity into conflict).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemovalCause {
    /// Evicted to make room.
    Replaced,
    /// Invalidated by coherence activity.
    Invalidated,
}

/// Classification of a miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MissKind {
    /// First access to the line by this cache.
    Cold,
    /// Line was previously evicted by replacement.
    Conflict,
    /// Line was previously removed by an invalidation.
    Coherence,
}

/// Per-line classification history, one code per line the cache ever held.
/// The four values encode exactly the old `ever_seen`/`removal_cause` pair:
/// never seen, seen (resident or no recorded removal), removed by
/// replacement, removed by invalidation.
const HIST_NEVER: u8 = 0;
const HIST_SEEN: u8 = 1;
const HIST_REPLACED: u8 = 2;
const HIST_INVALIDATED: u8 = 3;

#[inline]
fn classify_code(code: u8) -> MissKind {
    match code {
        HIST_NEVER => MissKind::Cold,
        HIST_INVALIDATED => MissKind::Coherence,
        _ => MissKind::Conflict,
    }
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    state: LineState,
    /// LRU timestamp (bigger = more recent).
    lru: u64,
    valid: bool,
}

/// One processor's cache at one level.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// log2 of the line size.
    line_shift: u32,
    /// `!(line - 1)`: ANDing yields the line address.
    line_mask: u64,
    /// `sets - 1`: ANDing the shifted line yields the set index.
    set_mask: u64,
    assoc: usize,
    ways: Vec<Way>,
    tick: u64,
    history: PagedMap<u8>,
}

impl Cache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::validate`]).
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        let sets = cfg.sets();
        Cache {
            cfg,
            line_shift: cfg.line.trailing_zeros(),
            line_mask: !(cfg.line - 1),
            set_mask: sets - 1,
            assoc: cfg.assoc as usize,
            ways: vec![
                Way {
                    tag: 0,
                    state: LineState::Shared,
                    lru: 0,
                    valid: false
                };
                (sets * cfg.assoc as u64) as usize
            ],
            tick: 0,
            history: PagedMap::new(cfg.line.trailing_zeros()),
        }
    }

    /// The line address containing `addr`.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr & self.line_mask
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.cfg.line
    }

    /// The set index of a line address.
    #[inline]
    fn set_of(&self, line: u64) -> u64 {
        (line >> self.line_shift) & self.set_mask
    }

    #[inline]
    fn ways_at(&self, set: u64) -> &[Way] {
        let start = set as usize * self.assoc;
        &self.ways[start..start + self.assoc]
    }

    #[inline]
    fn ways_of(&mut self, set: u64) -> &mut [Way] {
        let start = set as usize * self.assoc;
        &mut self.ways[start..start + self.assoc]
    }

    /// Looks up the line containing `addr`; on a hit, refreshes LRU and
    /// returns its state.
    pub fn lookup(&mut self, addr: u64) -> Option<LineState> {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        self.tick += 1;
        let tick = self.tick;
        for w in self.ways_of(set) {
            if w.valid && w.tag == line {
                w.lru = tick;
                return Some(w.state);
            }
        }
        None
    }

    /// Classifies a miss on `addr` without recording anything (pure query;
    /// the simulator's hot path uses [`Cache::record_miss`] instead).
    pub fn classify_miss(&self, addr: u64) -> MissKind {
        classify_code(self.history.get(addr))
    }

    /// Classifies a miss on `addr` and marks the line as referenced — the
    /// merged hot-path form of [`Cache::classify_miss`] plus the history half
    /// of [`Cache::insert`], costing a single table probe. Call it exactly
    /// when a lookup missed and the line is about to be filled; the fill
    /// itself ([`Cache::insert`]) is then free to skip no bookkeeping, since
    /// re-marking a seen line is idempotent.
    pub fn record_miss(&mut self, addr: u64) -> MissKind {
        let slot = self.history.get_mut(addr);
        let kind = classify_code(*slot);
        *slot = HIST_SEEN;
        kind
    }

    /// Inserts the line containing `addr` in `state`, returning the evicted
    /// line (address, was-dirty) if a valid victim was replaced.
    pub fn insert(&mut self, addr: u64, state: LineState) -> Option<(u64, bool)> {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        self.tick += 1;
        let tick = self.tick;
        self.history.set(line, HIST_SEEN);
        // Already present: update state.
        for w in self.ways_of(set) {
            if w.valid && w.tag == line {
                w.state = state;
                w.lru = tick;
                return None;
            }
        }
        // Choose an invalid way or the LRU victim.
        let victim = {
            let ways = self.ways_of(set);
            let mut victim = 0;
            for (i, w) in ways.iter().enumerate() {
                if !w.valid {
                    victim = i;
                    break;
                }
                if w.lru < ways[victim].lru {
                    victim = i;
                }
            }
            victim
        };
        let ways = self.ways_of(set);
        let evicted = if ways[victim].valid {
            Some((ways[victim].tag, ways[victim].state == LineState::Modified))
        } else {
            None
        };
        ways[victim] = Way {
            tag: line,
            state,
            lru: tick,
            valid: true,
        };
        if let Some((tag, _)) = evicted {
            self.history.set(tag, HIST_REPLACED);
        }
        evicted
    }

    /// Upgrades a resident line to Modified (no-op if absent).
    pub fn set_state(&mut self, addr: u64, state: LineState) {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        for w in self.ways_of(set) {
            if w.valid && w.tag == line {
                w.state = state;
                return;
            }
        }
    }

    /// Removes a line due to coherence activity; returns whether it was
    /// present (and dirty).
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let set = self.set_of(line);
        for w in self.ways_of(set) {
            if w.valid && w.tag == line {
                w.valid = false;
                let dirty = w.state == LineState::Modified;
                self.history.set(line, HIST_INVALIDATED);
                return Some(dirty);
            }
        }
        None
    }

    /// Removes a line due to an inclusion victim in the other level;
    /// classified as replacement.
    pub fn evict_for_inclusion(&mut self, line: u64) {
        let set = self.set_of(line);
        for w in self.ways_of(set) {
            if w.valid && w.tag == line {
                w.valid = false;
                self.history.set(line, HIST_REPLACED);
                return;
            }
        }
    }

    /// Downgrades a Modified line to Shared (no-op if absent or clean).
    pub fn downgrade(&mut self, line: u64) {
        self.set_state(line, LineState::Shared);
    }

    /// Every resident line with its state (for invariant checks).
    pub fn resident_lines(&self) -> Vec<(u64, LineState)> {
        self.ways
            .iter()
            .filter(|w| w.valid)
            .map(|w| (w.tag, w.state))
            .collect()
    }

    /// State of the line containing `addr`, without touching LRU.
    pub fn peek_state(&self, addr: u64) -> Option<LineState> {
        let line = self.line_of(addr);
        self.ways_at(self.set_of(line))
            .iter()
            .find(|w| w.valid && w.tag == line)
            .map(|w| w.state)
    }

    /// Whether the line containing `addr` is resident (no LRU update).
    pub fn contains(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        self.ways_at(self.set_of(line))
            .iter()
            .any(|w| w.valid && w.tag == line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 32-byte lines = 256 bytes.
        Cache::new(CacheConfig {
            size: 256,
            line: 32,
            assoc: 2,
        })
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny();
        assert_eq!(c.lookup(0x1000), None);
        assert_eq!(c.classify_miss(0x1000), MissKind::Cold);
        c.insert(0x1000, LineState::Shared);
        assert_eq!(c.lookup(0x1010), Some(LineState::Shared), "same line");
        assert_eq!(c.lookup(0x1020), None, "next line");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0 (line addr multiples of 4*32=128).
        c.insert(0x0000, LineState::Shared);
        c.insert(0x0080, LineState::Shared);
        c.lookup(0x0000); // refresh
        let evicted = c.insert(0x0100, LineState::Shared);
        assert_eq!(evicted, Some((0x0080, false)), "LRU way evicted");
        assert!(c.contains(0x0000));
        assert!(!c.contains(0x0080));
    }

    #[test]
    fn conflict_miss_after_replacement() {
        let mut c = tiny();
        c.insert(0x0000, LineState::Shared);
        c.insert(0x0080, LineState::Shared);
        c.insert(0x0100, LineState::Shared); // evicts 0x0000
        assert_eq!(c.classify_miss(0x0000), MissKind::Conflict);
    }

    #[test]
    fn coherence_miss_after_invalidation() {
        let mut c = tiny();
        c.insert(0x0000, LineState::Modified);
        assert_eq!(c.invalidate(0x0000), Some(true));
        assert_eq!(c.classify_miss(0x0000), MissKind::Coherence);
        // After re-insertion the next removal decides again.
        c.insert(0x0000, LineState::Shared);
        assert_eq!(c.lookup(0x0000), Some(LineState::Shared));
    }

    #[test]
    fn record_miss_matches_classify_then_marks_seen() {
        let mut c = tiny();
        assert_eq!(c.classify_miss(0x0000), MissKind::Cold);
        assert_eq!(c.record_miss(0x0000), MissKind::Cold);
        // The merged probe marked the line referenced: a re-classification
        // before the fill now reads Seen (= Conflict), exactly as the old
        // `ever_seen.insert` at fill time would have produced after insert.
        assert_eq!(c.classify_miss(0x0000), MissKind::Conflict);
        c.insert(0x0000, LineState::Modified);
        c.invalidate(0x0000);
        assert_eq!(c.record_miss(0x0000), MissKind::Coherence);
    }

    #[test]
    fn eviction_reports_dirtiness() {
        let mut c = tiny();
        c.insert(0x0000, LineState::Modified);
        c.insert(0x0080, LineState::Shared);
        let evicted = c.insert(0x0100, LineState::Shared);
        assert_eq!(evicted, Some((0x0000, true)));
    }

    #[test]
    fn state_transitions() {
        let mut c = tiny();
        c.insert(0x40, LineState::Shared);
        c.set_state(0x40, LineState::Modified);
        assert_eq!(c.lookup(0x40), Some(LineState::Modified));
        c.downgrade(0x40);
        assert_eq!(c.lookup(0x40), Some(LineState::Shared));
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig {
            size: 128,
            line: 32,
            assoc: 1,
        });
        c.insert(0x0000, LineState::Shared);
        c.insert(0x0080, LineState::Shared); // same set, 4 sets
        assert!(!c.contains(0x0000));
        assert_eq!(c.classify_miss(0x0000), MissKind::Conflict);
    }

    #[test]
    fn invalidate_absent_line_is_none() {
        let mut c = tiny();
        assert_eq!(c.invalidate(0x0000), None);
    }

    #[test]
    fn classification_spans_shared_and_private_segments() {
        use dss_shmem::{private_base, SHARED_BASE};
        let mut c = tiny();
        c.insert(SHARED_BASE, LineState::Shared);
        c.insert(private_base(1) + 0x40, LineState::Modified);
        assert_eq!(c.classify_miss(SHARED_BASE + 8), MissKind::Conflict);
        assert_eq!(c.classify_miss(private_base(1) + 0x48), MissKind::Conflict);
        assert_eq!(c.classify_miss(private_base(1)), MissKind::Cold);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_rejected() {
        Cache::new(CacheConfig {
            size: 192,
            line: 48,
            assoc: 1,
        });
    }
}
