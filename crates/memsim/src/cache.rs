//! A set-associative cache with LRU replacement, MSI line states, and the
//! bookkeeping needed to classify misses as cold, conflict, or coherence.

use std::collections::{HashMap, HashSet};

use crate::config::CacheConfig;

/// MSI coherence state of a resident line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineState {
    /// Shared (clean, possibly in other caches).
    Shared,
    /// Exclusive (clean, sole copy — MESI only).
    Exclusive,
    /// Modified (exclusive dirty).
    Modified,
}

impl LineState {
    /// Whether a local write can proceed without a coherence transaction.
    pub fn writable(self) -> bool {
        matches!(self, LineState::Exclusive | LineState::Modified)
    }

    /// Whether the line holds the only up-to-date copy that must be written
    /// back or supplied on a remote request.
    pub fn dirty(self) -> bool {
        matches!(self, LineState::Modified)
    }
}

/// Why a line most recently left the cache, for miss classification: a line
/// lost to a directory invalidation makes the next miss a coherence miss; a
/// line lost to replacement makes it a conflict miss (the paper folds
/// capacity into conflict).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemovalCause {
    /// Evicted to make room.
    Replaced,
    /// Invalidated by coherence activity.
    Invalidated,
}

/// Classification of a miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MissKind {
    /// First access to the line by this cache.
    Cold,
    /// Line was previously evicted by replacement.
    Conflict,
    /// Line was previously removed by an invalidation.
    Coherence,
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    state: LineState,
    /// LRU timestamp (bigger = more recent).
    lru: u64,
    valid: bool,
}

/// One processor's cache at one level.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: u64,
    ways: Vec<Way>,
    tick: u64,
    ever_seen: HashSet<u64>,
    removal_cause: HashMap<u64, RemovalCause>,
}

impl Cache {
    /// Builds an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            cfg,
            sets,
            ways: vec![
                Way {
                    tag: 0,
                    state: LineState::Shared,
                    lru: 0,
                    valid: false
                };
                (sets * cfg.assoc as u64) as usize
            ],
            tick: 0,
            ever_seen: HashSet::new(),
            removal_cause: HashMap::new(),
        }
    }

    /// The line address containing `addr`.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line - 1)
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.cfg.line
    }

    fn set_of(&self, line: u64) -> u64 {
        (line / self.cfg.line) % self.sets
    }

    fn ways_of(&mut self, set: u64) -> &mut [Way] {
        let start = (set * self.cfg.assoc as u64) as usize;
        &mut self.ways[start..start + self.cfg.assoc as usize]
    }

    /// Looks up the line containing `addr`; on a hit, refreshes LRU and
    /// returns its state.
    pub fn lookup(&mut self, addr: u64) -> Option<LineState> {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        self.tick += 1;
        let tick = self.tick;
        for w in self.ways_of(set) {
            if w.valid && w.tag == line {
                w.lru = tick;
                return Some(w.state);
            }
        }
        None
    }

    /// Classifies a miss on `addr` (call before [`Cache::insert`]).
    pub fn classify_miss(&self, addr: u64) -> MissKind {
        let line = self.line_of(addr);
        if !self.ever_seen.contains(&line) {
            MissKind::Cold
        } else {
            match self.removal_cause.get(&line) {
                Some(RemovalCause::Invalidated) => MissKind::Coherence,
                _ => MissKind::Conflict,
            }
        }
    }

    /// Inserts the line containing `addr` in `state`, returning the evicted
    /// line (address, was-dirty) if a valid victim was replaced.
    pub fn insert(&mut self, addr: u64, state: LineState) -> Option<(u64, bool)> {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        self.tick += 1;
        let tick = self.tick;
        self.ever_seen.insert(line);
        self.removal_cause.remove(&line);
        // Already present: update state.
        for w in self.ways_of(set) {
            if w.valid && w.tag == line {
                w.state = state;
                w.lru = tick;
                return None;
            }
        }
        // Choose an invalid way or the LRU victim.
        let victim = {
            let ways = self.ways_of(set);
            let mut victim = 0;
            for (i, w) in ways.iter().enumerate() {
                if !w.valid {
                    victim = i;
                    break;
                }
                if w.lru < ways[victim].lru {
                    victim = i;
                }
            }
            victim
        };
        let ways = self.ways_of(set);
        let evicted = if ways[victim].valid {
            Some((ways[victim].tag, ways[victim].state == LineState::Modified))
        } else {
            None
        };
        ways[victim] = Way {
            tag: line,
            state,
            lru: tick,
            valid: true,
        };
        if let Some((tag, _)) = evicted {
            self.removal_cause.insert(tag, RemovalCause::Replaced);
        }
        evicted
    }

    /// Upgrades a resident line to Modified (no-op if absent).
    pub fn set_state(&mut self, addr: u64, state: LineState) {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        for w in self.ways_of(set) {
            if w.valid && w.tag == line {
                w.state = state;
                return;
            }
        }
    }

    /// Removes a line due to coherence activity; returns whether it was
    /// present (and dirty).
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let set = self.set_of(line);
        for w in self.ways_of(set) {
            if w.valid && w.tag == line {
                w.valid = false;
                let dirty = w.state == LineState::Modified;
                self.removal_cause.insert(line, RemovalCause::Invalidated);
                return Some(dirty);
            }
        }
        None
    }

    /// Removes a line due to an inclusion victim in the other level;
    /// classified as replacement.
    pub fn evict_for_inclusion(&mut self, line: u64) {
        let set = self.set_of(line);
        for w in self.ways_of(set) {
            if w.valid && w.tag == line {
                w.valid = false;
                self.removal_cause.insert(line, RemovalCause::Replaced);
                return;
            }
        }
    }

    /// Downgrades a Modified line to Shared (no-op if absent or clean).
    pub fn downgrade(&mut self, line: u64) {
        self.set_state(line, LineState::Shared);
    }

    /// Every resident line with its state (for invariant checks).
    pub fn resident_lines(&self) -> Vec<(u64, LineState)> {
        self.ways
            .iter()
            .filter(|w| w.valid)
            .map(|w| (w.tag, w.state))
            .collect()
    }

    /// State of the line containing `addr`, without touching LRU.
    pub fn peek_state(&self, addr: u64) -> Option<LineState> {
        let line = addr & !(self.cfg.line - 1);
        let set = (line / self.cfg.line) % self.sets;
        let start = (set * self.cfg.assoc as u64) as usize;
        self.ways[start..start + self.cfg.assoc as usize]
            .iter()
            .find(|w| w.valid && w.tag == line)
            .map(|w| w.state)
    }

    /// Whether the line containing `addr` is resident (no LRU update).
    pub fn contains(&self, addr: u64) -> bool {
        let line = addr & !(self.cfg.line - 1);
        let set = (line / self.cfg.line) % self.sets;
        let start = (set * self.cfg.assoc as u64) as usize;
        self.ways[start..start + self.cfg.assoc as usize]
            .iter()
            .any(|w| w.valid && w.tag == line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 32-byte lines = 256 bytes.
        Cache::new(CacheConfig {
            size: 256,
            line: 32,
            assoc: 2,
        })
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny();
        assert_eq!(c.lookup(0x1000), None);
        assert_eq!(c.classify_miss(0x1000), MissKind::Cold);
        c.insert(0x1000, LineState::Shared);
        assert_eq!(c.lookup(0x1010), Some(LineState::Shared), "same line");
        assert_eq!(c.lookup(0x1020), None, "next line");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0 (line addr multiples of 4*32=128).
        c.insert(0x0000, LineState::Shared);
        c.insert(0x0080, LineState::Shared);
        c.lookup(0x0000); // refresh
        let evicted = c.insert(0x0100, LineState::Shared);
        assert_eq!(evicted, Some((0x0080, false)), "LRU way evicted");
        assert!(c.contains(0x0000));
        assert!(!c.contains(0x0080));
    }

    #[test]
    fn conflict_miss_after_replacement() {
        let mut c = tiny();
        c.insert(0x0000, LineState::Shared);
        c.insert(0x0080, LineState::Shared);
        c.insert(0x0100, LineState::Shared); // evicts 0x0000
        assert_eq!(c.classify_miss(0x0000), MissKind::Conflict);
    }

    #[test]
    fn coherence_miss_after_invalidation() {
        let mut c = tiny();
        c.insert(0x0000, LineState::Modified);
        assert_eq!(c.invalidate(0x0000), Some(true));
        assert_eq!(c.classify_miss(0x0000), MissKind::Coherence);
        // After re-insertion the next removal decides again.
        c.insert(0x0000, LineState::Shared);
        assert_eq!(c.lookup(0x0000), Some(LineState::Shared));
    }

    #[test]
    fn eviction_reports_dirtiness() {
        let mut c = tiny();
        c.insert(0x0000, LineState::Modified);
        c.insert(0x0080, LineState::Shared);
        let evicted = c.insert(0x0100, LineState::Shared);
        assert_eq!(evicted, Some((0x0000, true)));
    }

    #[test]
    fn state_transitions() {
        let mut c = tiny();
        c.insert(0x40, LineState::Shared);
        c.set_state(0x40, LineState::Modified);
        assert_eq!(c.lookup(0x40), Some(LineState::Modified));
        c.downgrade(0x40);
        assert_eq!(c.lookup(0x40), Some(LineState::Shared));
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig {
            size: 128,
            line: 32,
            assoc: 1,
        });
        c.insert(0x0000, LineState::Shared);
        c.insert(0x0080, LineState::Shared); // same set, 4 sets
        assert!(!c.contains(0x0000));
        assert_eq!(c.classify_miss(0x0000), MissKind::Conflict);
    }

    #[test]
    fn invalidate_absent_line_is_none() {
        let mut c = tiny();
        assert_eq!(c.invalidate(0x0000), None);
    }
}
