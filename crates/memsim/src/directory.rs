//! The full-map directory and NUMA home assignment.

use std::collections::HashMap;

use dss_shmem::{segment_of, Segment};

/// Directory entry for one (L2-granularity) memory line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirEntry {
    /// Bitmask of sharers.
    pub sharers: u32,
    /// Node holding the line Modified, if any.
    pub owner: Option<usize>,
}

/// A full-map directory over the lines actually touched.
#[derive(Clone, Debug, Default)]
pub struct Directory {
    entries: HashMap<u64, DirEntry>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// The entry for `line` (default: uncached).
    pub fn entry(&self, line: u64) -> DirEntry {
        self.entries.get(&line).copied().unwrap_or_default()
    }

    /// Records a read by `node`: adds it to the sharers and clears a dirty
    /// owner (who is downgraded to sharer by the caller).
    pub fn record_read(&mut self, line: u64, node: usize) {
        let e = self.entries.entry(line).or_default();
        if let Some(owner) = e.owner.take() {
            e.sharers |= 1 << owner;
        }
        e.sharers |= 1 << node;
    }

    /// Records a write by `node`: returns the nodes whose copies must be
    /// invalidated; the entry becomes exclusively owned.
    pub fn record_write(&mut self, line: u64, node: usize) -> Vec<usize> {
        let e = self.entries.entry(line).or_default();
        let mut to_invalidate = Vec::new();
        if let Some(owner) = e.owner {
            if owner != node {
                to_invalidate.push(owner);
            }
        }
        let sharers = e.sharers;
        for n in 0..32 {
            if sharers & (1 << n) != 0 && n as usize != node {
                to_invalidate.push(n as usize);
            }
        }
        e.sharers = 0;
        e.owner = Some(node);
        to_invalidate
    }

    /// Records an exclusive-clean installation by `node` (MESI): the node
    /// becomes owner without any invalidations (the caller has verified the
    /// line was uncached).
    pub fn record_exclusive(&mut self, line: u64, node: usize) {
        let e = self.entries.entry(line).or_default();
        debug_assert_eq!(
            (e.sharers, e.owner),
            (0, None),
            "exclusive grant to a cached line"
        );
        e.owner = Some(node);
    }

    /// Records that `node` dropped the line (eviction or invalidation).
    pub fn record_drop(&mut self, line: u64, node: usize) {
        if let Some(e) = self.entries.get_mut(&line) {
            e.sharers &= !(1 << node);
            if e.owner == Some(node) {
                e.owner = None;
            }
        }
    }

    /// Number of lines with directory state.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory tracks no lines.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// NUMA home node of an address: shared pages are distributed round-robin by
/// 8 KB page; private segments live on their owner's node.
pub fn home_of(addr: u64, nprocs: usize) -> usize {
    match segment_of(addr) {
        Some(Segment::Private(owner)) => owner % nprocs,
        _ => ((addr >> 13) % nprocs as u64) as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_then_write_invalidates_sharers() {
        let mut d = Directory::new();
        d.record_read(0x100, 0);
        d.record_read(0x100, 1);
        d.record_read(0x100, 2);
        let mut inv = d.record_write(0x100, 1);
        inv.sort();
        assert_eq!(inv, vec![0, 2]);
        assert_eq!(
            d.entry(0x100),
            DirEntry {
                sharers: 0,
                owner: Some(1)
            }
        );
    }

    #[test]
    fn write_then_read_downgrades_owner() {
        let mut d = Directory::new();
        assert!(d.record_write(0x100, 3).is_empty());
        d.record_read(0x100, 0);
        let e = d.entry(0x100);
        assert_eq!(e.owner, None);
        assert_eq!(e.sharers, (1 << 3) | (1 << 0));
    }

    #[test]
    fn write_by_owner_invalidates_nobody() {
        let mut d = Directory::new();
        d.record_write(0x100, 2);
        assert!(d.record_write(0x100, 2).is_empty());
    }

    #[test]
    fn drop_clears_state() {
        let mut d = Directory::new();
        d.record_write(0x100, 1);
        d.record_drop(0x100, 1);
        assert_eq!(d.entry(0x100), DirEntry::default());
        d.record_read(0x200, 0);
        d.record_drop(0x200, 0);
        assert_eq!(d.entry(0x200).sharers, 0);
    }

    #[test]
    fn homes_distribute_shared_pages() {
        let a = dss_shmem::SHARED_BASE;
        let homes: Vec<usize> = (0..8).map(|i| home_of(a + i * 8192, 4)).collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // Within a page, the home is constant.
        assert_eq!(home_of(a + 100, 4), home_of(a + 8000, 4));
    }

    #[test]
    fn private_addresses_live_with_their_owner() {
        for p in 0..4 {
            assert_eq!(home_of(dss_shmem::private_base(p) + 64, 4), p);
        }
    }
}
