//! The full-map directory and NUMA home assignment.
//!
//! Directory state lives in a paged flat store indexed by line offset from
//! the emulated segment bases ([`crate::paged::PagedMap`]), not a
//! `HashMap<u64, DirEntry>`: every transaction on the simulator's miss path
//! is one indexed load or store. Invalidation targets are returned as a node
//! bitmask rather than an allocated `Vec`, keeping the coherence path
//! allocation-free.

use dss_shmem::{segment_of, Segment};

use crate::paged::PagedMap;
use crate::protocol;

/// Directory entry for one (L2-granularity) memory line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct DirEntry {
    /// Bitmask of sharers.
    pub sharers: u64,
    /// Node holding the line Modified, if any.
    pub owner: Option<usize>,
}

/// Packed stored form of one entry. `owner_plus1` avoids an `Option`
/// discriminant; `touched` keeps [`Directory::len`]'s "lines ever recorded"
/// count exact even after a [`Directory::record_drop`] returns an entry to
/// its default value.
#[derive(Clone, Copy, Debug, Default)]
struct DirSlot {
    sharers: u64,
    owner_plus1: u8,
    touched: bool,
}

impl DirSlot {
    #[inline]
    fn owner(&self) -> Option<usize> {
        self.owner_plus1.checked_sub(1).map(usize::from)
    }

    #[inline]
    fn entry(&self) -> DirEntry {
        DirEntry {
            sharers: self.sharers,
            owner: self.owner(),
        }
    }

    #[inline]
    fn store(&mut self, e: DirEntry) {
        self.sharers = e.sharers;
        self.owner_plus1 = match e.owner {
            Some(node) => node as u8 + 1,
            None => 0,
        };
    }
}

/// A full-map directory over the lines actually touched.
#[derive(Clone, Debug)]
pub struct Directory {
    slots: PagedMap<DirSlot>,
    touched: u64,
}

impl Default for Directory {
    fn default() -> Self {
        Directory::new()
    }
}

impl Directory {
    /// Creates an empty directory at the finest meaningful granularity
    /// (16-byte lines — every valid configuration's lines are multiples).
    pub fn new() -> Self {
        Directory::with_line_size(16)
    }

    /// Creates an empty directory whose lines are `line` bytes, so entries
    /// pack densely for that line size.
    ///
    /// # Panics
    ///
    /// Panics if `line` is not a power of two.
    pub fn with_line_size(line: u64) -> Self {
        assert!(line.is_power_of_two(), "line size must be a power of two");
        Directory {
            slots: PagedMap::new(line.trailing_zeros()),
            touched: 0,
        }
    }

    /// The slot for `line`, created (and counted) on first touch.
    #[inline]
    fn slot_mut(&mut self, line: u64) -> &mut DirSlot {
        let s = self.slots.get_mut(line);
        if !s.touched {
            s.touched = true;
            self.touched += 1;
        }
        s
    }

    /// The entry for `line` (default: uncached).
    #[inline]
    pub fn entry(&self, line: u64) -> DirEntry {
        let s = self.slots.get(line);
        DirEntry {
            sharers: s.sharers,
            owner: s.owner(),
        }
    }

    /// Records a read by `node`: adds it to the sharers and clears a dirty
    /// owner (who is downgraded to sharer by the caller). The transition
    /// itself is [`crate::protocol::dir_read`].
    pub fn record_read(&mut self, line: u64, node: usize) {
        let e = self.slot_mut(line);
        e.store(protocol::dir_read(e.entry(), node));
    }

    /// Records a write by `node`: returns the bitmask of nodes whose copies
    /// must be invalidated; the entry becomes exclusively owned. The
    /// transition itself is [`crate::protocol::dir_write`].
    pub fn record_write(&mut self, line: u64, node: usize) -> u64 {
        let e = self.slot_mut(line);
        let (next, invalidate) = protocol::dir_write(e.entry(), node);
        e.store(next);
        invalidate
    }

    /// Records an exclusive-clean installation by `node` (MESI): the node
    /// becomes owner without any invalidations (the caller has verified the
    /// line was uncached). The transition itself is
    /// [`crate::protocol::dir_exclusive`].
    pub fn record_exclusive(&mut self, line: u64, node: usize) {
        let e = self.slot_mut(line);
        debug_assert_eq!(
            (e.sharers, e.owner()),
            (0, None),
            "exclusive grant to a cached line"
        );
        e.store(protocol::dir_exclusive(e.entry(), node));
    }

    /// Records that `node` dropped the line (eviction or invalidation). The
    /// transition itself is [`crate::protocol::dir_drop`].
    pub fn record_drop(&mut self, line: u64, node: usize) {
        if let Some(e) = self.slots.peek_mut(line) {
            e.store(protocol::dir_drop(e.entry(), node));
        }
    }

    /// Visits every line that has ever held directory state with its current
    /// entry, for post-run invariant sweeps. Cost is proportional to the
    /// directory's allocated pages, not the address space.
    pub fn for_each_entry(&self, mut f: impl FnMut(u64, DirEntry)) {
        self.slots.for_each(|line, s| {
            if s.touched {
                f(
                    line,
                    DirEntry {
                        sharers: s.sharers,
                        owner: s.owner(),
                    },
                );
            }
        });
    }

    /// Overwrites the sharer mask of `line` without any protocol action —
    /// deliberately desynchronizing the directory from the caches. Exists so
    /// the coherence invariant checker's negative tests can prove a corrupted
    /// sharer mask is detected; never call it from simulation code.
    pub fn corrupt_sharers(&mut self, line: u64, sharers: u64) {
        self.slot_mut(line).sharers = sharers;
    }

    /// Overwrites the recorded owner of `line` without any protocol action —
    /// the stale-owner flavor of [`Directory::corrupt_sharers`], for the same
    /// negative tests and fault-injection campaigns; never call it from
    /// simulation code.
    pub fn corrupt_owner(&mut self, line: u64, owner: Option<usize>) {
        self.slot_mut(line).owner_plus1 = match owner {
            Some(node) => u8::try_from(node + 1).unwrap_or(u8::MAX),
            None => 0,
        };
    }

    /// Number of lines that have ever held directory state.
    pub fn len(&self) -> usize {
        self.touched as usize
    }

    /// Whether the directory has never tracked a line.
    pub fn is_empty(&self) -> bool {
        self.touched == 0
    }
}

/// NUMA home node of an address: shared pages are distributed round-robin by
/// 8 KB page; private segments live on their owner's node.
pub fn home_of(addr: u64, nprocs: usize) -> usize {
    match segment_of(addr) {
        Some(Segment::Private(owner)) => owner % nprocs,
        _ => ((addr >> 13) % nprocs as u64) as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unpacks an invalidation mask into ascending node ids.
    fn nodes(mask: u64) -> Vec<usize> {
        (0..64).filter(|n| mask & (1 << n) != 0).collect()
    }

    #[test]
    fn read_then_write_invalidates_sharers() {
        let mut d = Directory::new();
        d.record_read(0x100, 0);
        d.record_read(0x100, 1);
        d.record_read(0x100, 2);
        let inv = d.record_write(0x100, 1);
        assert_eq!(nodes(inv), vec![0, 2]);
        assert_eq!(
            d.entry(0x100),
            DirEntry {
                sharers: 0,
                owner: Some(1)
            }
        );
    }

    #[test]
    fn write_then_read_downgrades_owner() {
        let mut d = Directory::new();
        assert_eq!(d.record_write(0x100, 3), 0);
        d.record_read(0x100, 0);
        let e = d.entry(0x100);
        assert_eq!(e.owner, None);
        assert_eq!(e.sharers, (1 << 3) | (1 << 0));
    }

    #[test]
    fn write_by_owner_invalidates_nobody() {
        let mut d = Directory::new();
        d.record_write(0x100, 2);
        assert_eq!(d.record_write(0x100, 2), 0);
    }

    #[test]
    fn drop_clears_state() {
        let mut d = Directory::new();
        d.record_write(0x100, 1);
        d.record_drop(0x100, 1);
        assert_eq!(d.entry(0x100), DirEntry::default());
        d.record_read(0x200, 0);
        d.record_drop(0x200, 0);
        assert_eq!(d.entry(0x200).sharers, 0);
    }

    #[test]
    fn len_counts_lines_ever_recorded() {
        let mut d = Directory::new();
        assert!(d.is_empty());
        d.record_drop(0x100, 0); // drop of an unknown line records nothing
        assert_eq!(d.len(), 0);
        d.record_read(0x100, 0);
        d.record_write(0x200, 1);
        assert_eq!(d.len(), 2);
        d.record_read(0x100, 2); // existing line: no growth
        assert_eq!(d.len(), 2);
        d.record_drop(0x100, 0);
        d.record_drop(0x100, 2);
        assert_eq!(d.len(), 2, "dropped lines stay counted, as before");
        assert!(!d.is_empty());
    }

    #[test]
    fn line_granularity_keeps_lines_distinct() {
        let mut d = Directory::with_line_size(64);
        d.record_read(0x1000, 0);
        d.record_read(0x1040, 1);
        assert_eq!(d.entry(0x1000).sharers, 1 << 0);
        assert_eq!(d.entry(0x1040).sharers, 1 << 1);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn for_each_entry_reports_current_state() {
        let mut d = Directory::with_line_size(64);
        d.record_read(0x1000, 0);
        d.record_write(0x1040, 2);
        let mut seen = Vec::new();
        d.for_each_entry(|line, e| seen.push((line, e)));
        seen.sort_by_key(|(line, _)| *line);
        assert_eq!(
            seen,
            vec![
                (
                    0x1000,
                    DirEntry {
                        sharers: 1,
                        owner: None
                    }
                ),
                (
                    0x1040,
                    DirEntry {
                        sharers: 0,
                        owner: Some(2)
                    }
                ),
            ]
        );
    }

    #[test]
    fn corrupt_sharers_bypasses_the_protocol() {
        let mut d = Directory::new();
        d.record_read(0x100, 0);
        d.corrupt_sharers(0x100, 0b1010);
        assert_eq!(d.entry(0x100).sharers, 0b1010);
    }

    #[test]
    fn homes_distribute_shared_pages() {
        let a = dss_shmem::SHARED_BASE;
        let homes: Vec<usize> = (0..8).map(|i| home_of(a + i * 8192, 4)).collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // Within a page, the home is constant.
        assert_eq!(home_of(a + 100, 4), home_of(a + 8000, 4));
    }

    #[test]
    fn private_addresses_live_with_their_owner() {
        for p in 0..4 {
            assert_eq!(home_of(dss_shmem::private_base(p) + 64, 4), p);
        }
    }
}
