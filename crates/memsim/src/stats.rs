//! Simulation statistics: everything the paper's figures report.

use std::collections::BTreeMap;

use dss_trace::{DataClass, DataGroup};

use crate::cache::MissKind;

/// Index of a [`DataClass`] into fixed-size counter arrays.
pub(crate) fn class_index(c: DataClass) -> usize {
    match c {
        DataClass::PrivHeap => 0,
        DataClass::Data => 1,
        DataClass::Index => 2,
        DataClass::BufDesc => 3,
        DataClass::BufLookup => 4,
        DataClass::LockHash => 5,
        DataClass::XidHash => 6,
        DataClass::LockMgrLock => 7,
        DataClass::BufMgrLock => 8,
        DataClass::SharedMisc => 9,
    }
}

/// Number of data classes.
pub(crate) const NCLASSES: usize = 10;

fn kind_index(k: MissKind) -> usize {
    match k {
        MissKind::Cold => 0,
        MissKind::Conflict => 1,
        MissKind::Coherence => 2,
    }
}

/// Per-class, per-kind miss counters for one cache level.
///
/// Stored inline as a fixed array (not a `Vec`): the counters are part of
/// every [`SimStats`], and keeping them allocation-free lets a warmed
/// [`crate::Machine`] fill a caller-owned `SimStats` without touching the
/// heap (the property `dss-check alloc` measures).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MissMatrix {
    counts: [[u64; 3]; NCLASSES],
}

impl MissMatrix {
    pub(crate) fn add(&mut self, class: DataClass, kind: MissKind) {
        self.counts[class_index(class)][kind_index(kind)] += 1;
    }

    /// Misses of `class` and `kind`.
    pub fn get(&self, class: DataClass, kind: MissKind) -> u64 {
        self.counts[class_index(class)][kind_index(kind)]
    }

    /// All misses of `class`.
    pub fn by_class(&self, class: DataClass) -> u64 {
        self.counts[class_index(class)].iter().sum()
    }

    /// All misses of classes in `group`.
    pub fn by_group(&self, group: DataGroup) -> u64 {
        DataClass::ALL
            .iter()
            .filter(|c| c.group() == group)
            .map(|c| self.by_class(*c))
            .sum()
    }

    /// Misses of `group` and `kind`.
    pub fn by_group_kind(&self, group: DataGroup, kind: MissKind) -> u64 {
        DataClass::ALL
            .iter()
            .filter(|c| c.group() == group)
            .map(|c| self.get(*c, kind))
            .sum()
    }

    /// Total misses.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Adds another matrix's counts into this one.
    pub fn merge(&mut self, other: &MissMatrix) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }
}

/// Counters for one cache level, aggregated across processors.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Load references reaching this level.
    pub read_accesses: u64,
    /// Store references reaching this level.
    pub write_accesses: u64,
    /// Load misses, classified.
    pub read_misses: MissMatrix,
    /// Store misses (unclassified; the paper's Figure 7 reports read misses).
    pub write_misses: u64,
}

impl LevelStats {
    /// Read miss rate at this level (misses over accesses at this level).
    pub fn read_miss_rate(&self) -> f64 {
        if self.read_accesses == 0 {
            0.0
        } else {
            self.read_misses.total() as f64 / self.read_accesses as f64
        }
    }

    /// Adds another level's counters into this one.
    pub fn merge(&mut self, other: &LevelStats) {
        self.read_accesses += other.read_accesses;
        self.write_accesses += other.write_accesses;
        self.read_misses.merge(&other.read_misses);
        self.write_misses += other.write_misses;
    }
}

/// Per-processor timing, with memory stall attributed per data class (the
/// paper's Figure 6(b) decomposition).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Final clock value.
    pub cycles: u64,
    /// Cycles doing non-stalled work (the paper's Busy).
    pub busy: u64,
    /// Cycles stalled on memory (the paper's Mem), including write-buffer
    /// overflow.
    pub mem_stall: u64,
    /// Cycles spinning on metalocks (the paper's MSync).
    pub msync: u64,
    /// Memory stall per data class.
    pub(crate) stall_by_class: [u64; NCLASSES],
}

impl ProcStats {
    /// Memory stall attributed to `class`.
    pub fn stall_of(&self, class: DataClass) -> u64 {
        self.stall_by_class[class_index(class)]
    }

    /// Memory stall attributed to `group`.
    pub fn stall_of_group(&self, group: DataGroup) -> u64 {
        DataClass::ALL
            .iter()
            .filter(|c| c.group() == group)
            .map(|c| self.stall_of(*c))
            .sum()
    }

    /// Stall on private data (the paper's PMem).
    pub fn pmem(&self) -> u64 {
        self.stall_of_group(DataGroup::Priv)
    }

    /// Stall on shared data (the paper's SMem).
    pub fn smem(&self) -> u64 {
        self.mem_stall - self.pmem()
    }
}

/// Full results of one simulation run.
///
/// Equality is exact and field-by-field, so tests can assert that a parallel
/// experiment harness reproduces its serial results bit for bit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Per-processor timing.
    pub procs: Vec<ProcStats>,
    /// Primary-cache counters (all processors).
    pub l1: LevelStats,
    /// Secondary-cache counters (all processors).
    pub l2: LevelStats,
    /// Prefetches issued (when prefetching is enabled).
    pub prefetches_issued: u64,
    /// Prefetched lines that were actually filled.
    pub prefetches_filled: u64,
}

impl SimStats {
    /// Execution time: the slowest processor's cycle count.
    pub fn exec_cycles(&self) -> u64 {
        self.procs.iter().map(|p| p.cycles).max().unwrap_or(0)
    }

    /// Sum of a per-processor field across processors.
    pub fn total<F: Fn(&ProcStats) -> u64>(&self, f: F) -> u64 {
        self.procs.iter().map(f).sum()
    }

    /// Aggregate busy / mem / msync fractions of total processor cycles.
    pub fn time_breakdown(&self) -> TimeBreakdown {
        let cycles = self.total(|p| p.cycles).max(1);
        TimeBreakdown {
            busy: self.total(|p| p.busy) as f64 / cycles as f64,
            mem: self.total(|p| p.mem_stall) as f64 / cycles as f64,
            msync: self.total(|p| p.msync) as f64 / cycles as f64,
        }
    }

    /// Aggregate memory-stall cycles per class across processors.
    pub fn stall_by_class(&self) -> BTreeMap<DataClass, u64> {
        DataClass::ALL
            .iter()
            .map(|c| (*c, self.total(|p| p.stall_of(*c))))
            .collect()
    }

    /// The paper's "global" L2 read miss rate: L2 read misses over all load
    /// references issued by the processors.
    pub fn l2_global_read_miss_rate(&self) -> f64 {
        if self.l1.read_accesses == 0 {
            0.0
        } else {
            self.l2.read_misses.total() as f64 / self.l1.read_accesses as f64
        }
    }

    /// Serializes every counter into a compact, whitespace-free record for
    /// the experiment checkpoint journal: the processor count, a `;`, then
    /// all `u64` counters comma-separated in a fixed field order. The
    /// matching [`SimStats::from_record`] restores an exactly equal value
    /// (`==` is field-by-field), which is what lets a resumed sweep re-render
    /// byte-identical output from journaled results.
    pub fn to_record(&self) -> String {
        let mut vals: Vec<u64> = Vec::new();
        for p in &self.procs {
            vals.extend([p.cycles, p.busy, p.mem_stall, p.msync]);
            vals.extend(p.stall_by_class);
        }
        for level in [&self.l1, &self.l2] {
            vals.extend([
                level.read_accesses,
                level.write_accesses,
                level.write_misses,
            ]);
            for row in &level.read_misses.counts {
                vals.extend(row);
            }
        }
        vals.extend([self.prefetches_issued, self.prefetches_filled]);
        let body: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
        format!("{};{}", self.procs.len(), body.join(","))
    }

    /// Parses a record produced by [`SimStats::to_record`]. Returns `None`
    /// for anything malformed — wrong field count, non-numeric values, an
    /// impossible processor count — so a torn or hand-edited journal line is
    /// rejected rather than replayed as different results.
    pub fn from_record(record: &str) -> Option<SimStats> {
        let (nprocs, body) = record.split_once(';')?;
        let nprocs: usize = nprocs.parse().ok()?;
        // One sweep point simulates at most a machine's worth of processors;
        // a huge count here is corruption, not data.
        if nprocs > 1 << 16 {
            return None;
        }
        let per_proc = 4 + NCLASSES;
        let per_level = 3 + NCLASSES * 3;
        let expected = nprocs * per_proc + 2 * per_level + 2;
        let mut vals = Vec::with_capacity(expected);
        for field in body.split(',') {
            vals.push(field.parse::<u64>().ok()?);
        }
        if vals.len() != expected {
            return None;
        }
        let mut it = vals.into_iter();
        let mut next = || it.next().unwrap_or(0);
        let mut stats = SimStats::default();
        for _ in 0..nprocs {
            let mut p = ProcStats {
                cycles: next(),
                busy: next(),
                mem_stall: next(),
                msync: next(),
                ..Default::default()
            };
            for slot in &mut p.stall_by_class {
                *slot = next();
            }
            stats.procs.push(p);
        }
        for level in [&mut stats.l1, &mut stats.l2] {
            level.read_accesses = next();
            level.write_accesses = next();
            level.write_misses = next();
            for row in &mut level.read_misses.counts {
                for cell in row {
                    *cell = next();
                }
            }
        }
        stats.prefetches_issued = next();
        stats.prefetches_filled = next();
        Some(stats)
    }
}

/// Fractions of total processor time (sums to ~1.0).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeBreakdown {
    /// Busy fraction.
    pub busy: f64,
    /// Memory-stall fraction.
    pub mem: f64,
    /// Metalock-synchronization fraction.
    pub msync: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_matrix_accumulates_and_groups() {
        let mut m = MissMatrix::default();
        m.add(DataClass::Data, MissKind::Cold);
        m.add(DataClass::Data, MissKind::Cold);
        m.add(DataClass::LockMgrLock, MissKind::Coherence);
        m.add(DataClass::BufDesc, MissKind::Conflict);
        assert_eq!(m.get(DataClass::Data, MissKind::Cold), 2);
        assert_eq!(m.by_class(DataClass::Data), 2);
        assert_eq!(m.by_group(DataGroup::Metadata), 2);
        assert_eq!(m.by_group_kind(DataGroup::Metadata, MissKind::Coherence), 1);
        assert_eq!(m.total(), 4);
    }

    #[test]
    fn proc_stats_split_pmem_smem() {
        let mut p = ProcStats::default();
        p.stall_by_class[class_index(DataClass::PrivHeap)] = 30;
        p.stall_by_class[class_index(DataClass::Data)] = 50;
        p.stall_by_class[class_index(DataClass::Index)] = 20;
        p.mem_stall = 100;
        assert_eq!(p.pmem(), 30);
        assert_eq!(p.smem(), 70);
        assert_eq!(p.stall_of_group(DataGroup::Data), 50);
    }

    #[test]
    fn breakdown_fractions() {
        let stats = SimStats {
            procs: vec![
                ProcStats {
                    cycles: 100,
                    busy: 60,
                    mem_stall: 30,
                    msync: 10,
                    ..Default::default()
                },
                ProcStats {
                    cycles: 100,
                    busy: 50,
                    mem_stall: 40,
                    msync: 10,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        let b = stats.time_breakdown();
        assert!((b.busy - 0.55).abs() < 1e-9);
        assert!((b.mem - 0.35).abs() < 1e-9);
        assert!((b.msync - 0.10).abs() < 1e-9);
        assert_eq!(stats.exec_cycles(), 100);
    }

    #[test]
    fn miss_rates_guard_against_zero() {
        let l = LevelStats::default();
        assert_eq!(l.read_miss_rate(), 0.0);
        let s = SimStats::default();
        assert_eq!(s.l2_global_read_miss_rate(), 0.0);
    }

    fn nontrivial_stats() -> SimStats {
        let mut stats = SimStats {
            prefetches_issued: 17,
            prefetches_filled: 11,
            ..Default::default()
        };
        for i in 0..3u64 {
            let mut p = ProcStats {
                cycles: 1000 + i,
                busy: 600 + i,
                mem_stall: 300,
                msync: 100,
                ..Default::default()
            };
            for (c, slot) in p.stall_by_class.iter_mut().enumerate() {
                *slot = i * 100 + c as u64;
            }
            stats.procs.push(p);
        }
        stats.l1.read_accesses = 123_456;
        stats.l1.write_accesses = 7_890;
        stats.l1.write_misses = 42;
        stats.l2.read_accesses = 9_876;
        for class in DataClass::ALL {
            stats.l1.read_misses.add(class, MissKind::Cold);
            stats.l2.read_misses.add(class, MissKind::Conflict);
            stats.l2.read_misses.add(class, MissKind::Coherence);
        }
        stats
    }

    #[test]
    fn record_roundtrip_is_exact() {
        for stats in [SimStats::default(), nontrivial_stats()] {
            let record = stats.to_record();
            assert!(
                !record.contains(char::is_whitespace),
                "journal records must be whitespace-free: {record:?}"
            );
            assert_eq!(SimStats::from_record(&record), Some(stats));
        }
    }

    #[test]
    fn malformed_records_are_rejected_not_misread() {
        let good = nontrivial_stats().to_record();
        let torn = &good[..good.len() / 2];
        let extra = format!("{good},5");
        let junk = format!("{good}x");
        for bad in [
            "",
            ";",
            "3",
            "not-a-number;1,2,3",
            "99999999999999999999;1",
            torn,
            extra.as_str(),
            junk.as_str(),
        ] {
            assert_eq!(SimStats::from_record(bad), None, "accepted {bad:?}");
        }
    }
}
