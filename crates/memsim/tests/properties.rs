//! Property tests: the simulator's structural invariants and accounting
//! identities hold for arbitrary (well-formed) traces.

use dss_memsim::{Machine, MachineConfig, Protocol};
use dss_shmem::{private_base, SHARED_BASE};
use dss_trace::{DataClass, LockClass, LockToken, Trace, Tracer};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Read { shared: bool, slot: u16 },
    Write { shared: bool, slot: u16 },
    Busy(u16),
    Critical { lock: bool, slot: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<bool>(), any::<u16>()).prop_map(|(shared, slot)| Op::Read { shared, slot }),
        (any::<bool>(), any::<u16>()).prop_map(|(shared, slot)| Op::Write { shared, slot }),
        (1u16..200).prop_map(Op::Busy),
        (any::<bool>(), any::<u16>()).prop_map(|(lock, slot)| Op::Critical { lock, slot }),
    ]
}

/// Builds a well-formed trace (balanced lock pairs) from an op list.
fn build_trace(proc: usize, ops: &[Op]) -> Trace {
    let t = Tracer::new(proc);
    let classes = [
        DataClass::Data,
        DataClass::Index,
        DataClass::BufDesc,
        DataClass::LockHash,
    ];
    for op in ops {
        match op {
            Op::Read { shared, slot } => {
                let (addr, class) = addr_of(proc, *shared, *slot);
                t.read(addr, 8, class);
            }
            Op::Write { shared, slot } => {
                let (addr, class) = addr_of(proc, *shared, *slot);
                t.write(addr, 8, class);
            }
            Op::Busy(n) => t.busy(*n as u32),
            Op::Critical { lock, slot } => {
                let class = if *lock {
                    LockClass::LockMgr
                } else {
                    LockClass::BufMgr
                };
                let token = LockToken::new(SHARED_BASE + 64 * (1 + (*slot % 4) as u64), class);
                t.lock_acquire(token);
                t.read(
                    SHARED_BASE + 4096 + (*slot as u64 % 128) * 8,
                    8,
                    classes[*slot as usize % 4],
                );
                t.lock_release(token);
            }
        }
    }
    t.take()
}

fn addr_of(proc: usize, shared: bool, slot: u16) -> (u64, DataClass) {
    if shared {
        (
            SHARED_BASE + 1_000_000 + (slot as u64) * 24,
            DataClass::Data,
        )
    } else {
        (private_base(proc) + (slot as u64) * 24, DataClass::PrivHeap)
    }
}

fn traces_from(per_proc: &[Vec<Op>]) -> Vec<Trace> {
    per_proc
        .iter()
        .enumerate()
        .map(|(p, ops)| build_trace(p, ops))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Inclusion and cache/directory agreement hold after any run, under
    /// both protocols.
    #[test]
    fn structural_invariants_hold(
        per_proc in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 0..300), 1..4),
        mesi in any::<bool>(),
    ) {
        let mut cfg = MachineConfig::baseline();
        cfg.nprocs = per_proc.len();
        if mesi {
            cfg = cfg.with_protocol(Protocol::Mesi);
        }
        let mut machine = Machine::new(cfg);
        machine.run(&traces_from(&per_proc));
        machine.check_invariants();
    }

    /// Accounting identities: attributed time never exceeds the clock, the
    /// L2 sees exactly the L1's read misses, and misses never exceed
    /// accesses.
    #[test]
    fn accounting_identities_hold(
        per_proc in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 0..300), 1..4),
    ) {
        let mut cfg = MachineConfig::baseline();
        cfg.nprocs = per_proc.len();
        let stats = Machine::new(cfg).run(&traces_from(&per_proc));
        for p in &stats.procs {
            prop_assert!(p.busy + p.mem_stall + p.msync <= p.cycles,
                "over-attributed: busy={} mem={} msync={} cycles={}",
                p.busy, p.mem_stall, p.msync, p.cycles);
            prop_assert_eq!(p.mem_stall, dss_trace::DataClass::ALL.iter()
                .map(|c| p.stall_of(*c)).sum::<u64>(), "per-class stall sums to total");
        }
        prop_assert_eq!(stats.l2.read_accesses, stats.l1.read_misses.total());
        prop_assert!(stats.l1.read_misses.total() <= stats.l1.read_accesses);
        prop_assert!(stats.l2.read_misses.total() <= stats.l2.read_accesses);
        prop_assert!(stats.l2.write_misses <= stats.l2.write_accesses);
    }

    /// Warm reruns of the same trace never miss more than the cold run.
    #[test]
    fn warm_rerun_is_no_worse(
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        let mut machine = Machine::new(MachineConfig::baseline());
        let trace = vec![build_trace(0, &ops)];
        let cold = machine.run(&trace);
        let warm = machine.run(&trace);
        prop_assert!(warm.l2.read_misses.total() <= cold.l2.read_misses.total());
        prop_assert!(warm.exec_cycles() <= cold.exec_cycles());
    }

    /// The simulation is a pure function of (config, traces).
    #[test]
    fn runs_are_deterministic(
        per_proc in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 0..200), 1..4),
    ) {
        let mut cfg = MachineConfig::baseline();
        cfg.nprocs = per_proc.len();
        let a = Machine::new(cfg.clone()).run(&traces_from(&per_proc));
        let b = Machine::new(cfg).run(&traces_from(&per_proc));
        prop_assert_eq!(a.exec_cycles(), b.exec_cycles());
        prop_assert_eq!(a.total(|p| p.msync), b.total(|p| p.msync));
        prop_assert_eq!(&a.l1.read_misses, &b.l1.read_misses);
        prop_assert_eq!(&a.l2.read_misses, &b.l2.read_misses);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any sane cache geometry simulates any trace without panicking, and
    /// the invariants still hold.
    #[test]
    fn arbitrary_geometries_are_safe(
        l1_sets_log in 2u32..8,
        l1_line_log in 3u32..8,
        l2_extra_log in 1u32..5,
        l2_assoc in 1u32..5,
        ops in proptest::collection::vec(op_strategy(), 0..200),
    ) {
        let l1_line = 1u64 << l1_line_log;
        let l2_line = l1_line * 2;
        let mut cfg = MachineConfig::baseline();
        cfg.l1 = dss_memsim::CacheConfig {
            size: (1 << l1_sets_log) * l1_line,
            line: l1_line,
            assoc: 1,
        };
        // L2 must be a power-of-two set count: size = sets * line * assoc.
        let l2_sets = 1u64 << (l1_sets_log + l2_extra_log);
        let l2_assoc = 1u32 << (l2_assoc - 1).min(2);
        cfg.l2 = dss_memsim::CacheConfig {
            size: l2_sets * l2_line * l2_assoc as u64,
            line: l2_line,
            assoc: l2_assoc,
        };
        cfg.nprocs = 2;
        cfg.validate();
        let traces = traces_from(&[ops.clone(), ops]);
        let mut machine = Machine::new(cfg);
        let stats = machine.run(&traces);
        machine.check_invariants();
        prop_assert!(stats.l1.read_misses.total() <= stats.l1.read_accesses);
    }

    /// Prefetching never changes results-bearing counters (accesses) and
    /// never increases L1 *data* misses on a sequential stream.
    #[test]
    fn prefetch_preserves_access_counts(degree in 0u32..8, n in 1u64..400) {
        let make = || {
            let t = Tracer::new(0);
            for i in 0..n {
                t.read(SHARED_BASE + i * 32, 8, DataClass::Data);
            }
            t.take()
        };
        let base = Machine::new(MachineConfig::baseline()).run(&[make()]);
        let pf = Machine::new(MachineConfig::baseline().with_data_prefetch(degree)).run(&[make()]);
        prop_assert_eq!(base.l1.read_accesses, pf.l1.read_accesses);
        prop_assert!(
            pf.l1.read_misses.by_class(DataClass::Data)
                <= base.l1.read_misses.by_class(DataClass::Data)
        );
    }
}
