//! Conformance: the cycle-accurate [`Machine`] is a refinement of the pure
//! transition kernel in [`dss_memsim::protocol`].
//!
//! The model checker (`dss-check model`) exhausts the *kernel's* state
//! space; that proof only covers the simulator if the simulator's coherence
//! transitions actually are the kernel's. This suite pins that: random
//! read/write schedules over two shared lines are replayed on a real
//! machine, with each operation pinned into its own 10 000-cycle busy
//! window so the machine's smallest-clock-first arbitration executes them
//! in the schedule's global total order (an operation costs at most ~352
//! cycles and schedules stay short, so per-node clock drift never escapes
//! a window). After every prefix of the schedule, a fresh machine's
//! observable protocol state — the directory entry plus every node's L2
//! line state — must equal folding the same prefix through
//! [`Kernel::step`].
//!
//! The two addresses sit on consecutive 64-byte lines (distinct L2 sets in
//! the baseline geometry), so no conflict eviction ever fires and the
//! machine's transition sequence is exactly the schedule.

use dss_memsim::protocol::{Kernel, Op as KernelOp, ProtocolState};
use dss_memsim::{DirEntry, LineState, Machine, MachineConfig, Protocol};
use dss_shmem::SHARED_BASE;
use dss_trace::{DataClass, Tracer};
use proptest::prelude::*;

/// Two line-aligned shared addresses on consecutive (conflict-free) lines.
const LINE_ADDRS: [u64; 2] = [SHARED_BASE, SHARED_BASE + 64];

/// One global window per schedule slot; far larger than any op's cost.
const WINDOW: u32 = 10_000;

/// One scheduled operation: `node` reads or writes `LINE_ADDRS[line]`.
#[derive(Clone, Copy, Debug)]
struct SchedOp {
    node: usize,
    line: usize,
    write: bool,
}

impl SchedOp {
    fn kernel_op(&self) -> KernelOp {
        if self.write {
            KernelOp::Write { node: self.node }
        } else {
            KernelOp::Read { node: self.node }
        }
    }
}

/// Runs the first `k` schedule entries on a fresh machine, each pinned to
/// its global window, and returns the observable protocol state per line.
fn run_prefix(
    protocol: Protocol,
    nprocs: usize,
    schedule: &[SchedOp],
    k: usize,
) -> Vec<(DirEntry, Vec<Option<LineState>>)> {
    let tracers: Vec<Tracer> = (0..nprocs).map(Tracer::new).collect();
    // Whole windows of busy already emitted per node. The ops themselves
    // cost only cycles, not windows: a node's clock sits at
    // `padded * WINDOW` plus the small accumulated cost of its past ops, so
    // padding to the slot's absolute window start keeps every op inside its
    // own window (drift stays far below WINDOW for these short schedules).
    let mut padded = vec![0u32; nprocs];
    for (slot, op) in schedule[..k].iter().enumerate() {
        let slot = slot as u32;
        if slot > padded[op.node] {
            tracers[op.node].busy((slot - padded[op.node]) * WINDOW);
            padded[op.node] = slot;
        }
        let addr = LINE_ADDRS[op.line];
        if op.write {
            tracers[op.node].write(addr, 8, DataClass::Data);
        } else {
            tracers[op.node].read(addr, 8, DataClass::Data);
        }
    }
    let traces: Vec<_> = tracers.iter().map(Tracer::take).collect();
    let mut m = Machine::new(
        MachineConfig::baseline()
            .with_processors(nprocs)
            .with_protocol(protocol),
    );
    m.run(&traces);
    LINE_ADDRS
        .iter()
        .map(|&addr| m.observe_protocol_state(addr))
        .collect()
}

/// Folds the first `k` schedule entries through the kernel, per line.
fn fold_kernel(protocol: Protocol, schedule: &[SchedOp], k: usize) -> [ProtocolState; 2] {
    let kernel = Kernel::new(protocol);
    let mut states = [ProtocolState::reset(), ProtocolState::reset()];
    for op in &schedule[..k] {
        states[op.line] = kernel.step(states[op.line], op.kernel_op()).0;
    }
    states
}

/// Asserts machine and kernel agree on every line after `k` schedule steps.
fn assert_prefix_agrees(protocol: Protocol, nprocs: usize, schedule: &[SchedOp], k: usize) {
    let observed = run_prefix(protocol, nprocs, schedule, k);
    let folded = fold_kernel(protocol, schedule, k);
    for (line, (entry, caches)) in observed.iter().enumerate() {
        assert_eq!(
            *entry,
            folded[line].entry,
            "{protocol:?} {nprocs}p: directory diverges on line {line} after {:?}",
            &schedule[..k]
        );
        assert_eq!(
            caches[..nprocs],
            folded[line].caches[..nprocs],
            "{protocol:?} {nprocs}p: caches diverge on line {line} after {:?}",
            &schedule[..k]
        );
    }
}

fn schedule_strategy() -> impl Strategy<Value = Vec<SchedOp>> {
    proptest::collection::vec(
        (0usize..8, 0usize..2, any::<bool>()).prop_map(|(node, line, write)| SchedOp {
            node,
            line,
            write,
        }),
        1..14,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Machine ⊆ kernel: every prefix of a random schedule lands the
    /// machine in exactly the state the kernel's fold predicts, across
    /// 2–8 processors and both protocols.
    #[test]
    fn machine_follows_the_kernel_relation(
        nprocs in 2usize..=8,
        mesi in any::<bool>(),
        raw in schedule_strategy(),
    ) {
        let protocol = if mesi { Protocol::Mesi } else { Protocol::Msi };
        let schedule: Vec<SchedOp> = raw
            .into_iter()
            .map(|op| SchedOp { node: op.node % nprocs, ..op })
            .collect();
        for k in 1..=schedule.len() {
            assert_prefix_agrees(protocol, nprocs, &schedule, k);
        }
    }
}

/// A pinned anchor: the classic migratory pattern on 3 processors, MSI.
/// P0 writes (Modified), P1 reads (downgrade to Shared ×2), P2 writes
/// (invalidate both, Modified at P2).
#[test]
fn migratory_anchor_msi() {
    let schedule = [
        SchedOp {
            node: 0,
            line: 0,
            write: true,
        },
        SchedOp {
            node: 1,
            line: 0,
            write: false,
        },
        SchedOp {
            node: 2,
            line: 0,
            write: true,
        },
    ];
    for k in 1..=schedule.len() {
        assert_prefix_agrees(Protocol::Msi, 3, &schedule, k);
    }
    let end = fold_kernel(Protocol::Msi, &schedule, 3)[0];
    assert_eq!(end.entry.owner, Some(2));
    assert_eq!(end.caches[2], Some(LineState::Modified));
    assert_eq!(end.caches[0], None);
    assert_eq!(end.caches[1], None);
}

/// MESI grants Exclusive to a sole-sharer read; the machine must install
/// the same state the kernel does, and a second reader demotes both.
#[test]
fn exclusive_grant_anchor_mesi() {
    let schedule = [
        SchedOp {
            node: 1,
            line: 1,
            write: false,
        },
        SchedOp {
            node: 0,
            line: 1,
            write: false,
        },
    ];
    for k in 1..=schedule.len() {
        assert_prefix_agrees(Protocol::Mesi, 2, &schedule, k);
    }
    let mid = fold_kernel(Protocol::Mesi, &schedule, 1)[1];
    assert_eq!(mid.caches[1], Some(LineState::Exclusive));
    let end = fold_kernel(Protocol::Mesi, &schedule, 2)[1];
    assert_eq!(end.caches[0], Some(LineState::Shared));
    assert_eq!(end.caches[1], Some(LineState::Shared));
}
