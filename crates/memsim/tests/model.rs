//! Property test: the paged-history miss classifier agrees with a naive
//! hash-based reference model.
//!
//! The production `Cache` packs per-line classification history into a paged
//! flat table ([`Cache::record_miss`] and friends); the original
//! implementation kept an `ever_seen: HashSet` plus a
//! `removal_cause: HashMap<_, RemovalCause>`. This test drives both through
//! arbitrary operation sequences over a tiny cache — with addresses spanning
//! the shared segment, two private segments, and the low (unallocated) range
//! — and checks after every operation that they classify every pool address
//! identically.

use std::collections::{HashMap, HashSet};

use dss_memsim::{Cache, CacheConfig, LineState, MissKind, RemovalCause};
use dss_shmem::{private_base, SHARED_BASE};
use proptest::prelude::*;

/// A 256-byte 2-way cache with 32-byte lines: 4 sets, so any region's pool
/// lines below collide constantly and every history transition gets hit.
fn tiny_cache() -> Cache {
    Cache::new(CacheConfig {
        size: 256,
        line: 32,
        assoc: 2,
    })
}

/// Line-aligned addresses across all the segments `PagedMap` distinguishes.
fn address_pool() -> Vec<u64> {
    let mut pool = Vec::new();
    for base in [0x40, SHARED_BASE, private_base(0), private_base(2)] {
        for k in 0..8u64 {
            pool.push(base + k * 32);
        }
    }
    pool
}

/// The original hash-based classifier, verbatim.
#[derive(Default)]
struct Model {
    ever_seen: HashSet<u64>,
    removal_cause: HashMap<u64, RemovalCause>,
}

impl Model {
    fn classify(&self, line: u64) -> MissKind {
        if !self.ever_seen.contains(&line) {
            MissKind::Cold
        } else {
            match self.removal_cause.get(&line) {
                Some(RemovalCause::Invalidated) => MissKind::Coherence,
                _ => MissKind::Conflict,
            }
        }
    }

    fn mark_seen(&mut self, line: u64) {
        self.ever_seen.insert(line);
        self.removal_cause.remove(&line);
    }
}

#[derive(Clone, Debug)]
enum Op {
    Insert { idx: usize, modified: bool },
    RecordMiss { idx: usize },
    Lookup { idx: usize },
    Invalidate { idx: usize },
    EvictForInclusion { idx: usize },
}

fn op_strategy(pool: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..pool, any::<bool>()).prop_map(|(idx, modified)| Op::Insert { idx, modified }),
        2 => (0..pool).prop_map(|idx| Op::RecordMiss { idx }),
        2 => (0..pool).prop_map(|idx| Op::Lookup { idx }),
        1 => (0..pool).prop_map(|idx| Op::Invalidate { idx }),
        1 => (0..pool).prop_map(|idx| Op::EvictForInclusion { idx }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn paged_classifier_matches_hash_model(
        ops in proptest::collection::vec(op_strategy(32), 1..120)
    ) {
        let pool = address_pool();
        let mut cache = tiny_cache();
        let mut model = Model::default();

        for op in ops {
            match op {
                Op::Insert { idx, modified } => {
                    let line = pool[idx];
                    let state = if modified { LineState::Modified } else { LineState::Shared };
                    let evicted = cache.insert(line, state);
                    model.mark_seen(line);
                    if let Some((victim, _dirty)) = evicted {
                        model.removal_cause.insert(victim, RemovalCause::Replaced);
                    }
                }
                Op::RecordMiss { idx } => {
                    let line = pool[idx];
                    let got = cache.record_miss(line);
                    prop_assert_eq!(got, model.classify(line), "record_miss at {:#x}", line);
                    model.mark_seen(line);
                }
                Op::Lookup { idx } => {
                    // LRU churn only; classification must be unaffected.
                    let _ = cache.lookup(pool[idx]);
                }
                Op::Invalidate { idx } => {
                    let line = pool[idx];
                    if cache.invalidate(line).is_some() {
                        model.removal_cause.insert(line, RemovalCause::Invalidated);
                    }
                }
                Op::EvictForInclusion { idx } => {
                    let line = pool[idx];
                    let present = cache.contains(line);
                    cache.evict_for_inclusion(line);
                    if present {
                        model.removal_cause.insert(line, RemovalCause::Replaced);
                    }
                }
            }
            for &line in &pool {
                prop_assert_eq!(
                    cache.classify_miss(line),
                    model.classify(line),
                    "divergence at {:#x}",
                    line
                );
            }
        }
    }
}
