//! Classification of memory references by the data structure they touch.

/// The data structure a memory reference touches.
///
/// These are the categories the HPCA'97 paper uses when decomposing misses
/// (its Figure 7): private data, database data (tuples in buffer blocks),
/// database indices, and the Postgres95 metadata structures — buffer
/// descriptors, the buffer lookup hash, the Lock and Xid hash tables, and the
/// `LockMgrLock` spinlock (labelled *LockSLock* in the paper). We additionally
/// distinguish the `BufMgrLock` spinlock and a catch-all for other shared
/// metadata; both fold into the paper's *Metadata* group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataClass {
    /// Private heap data: tuple slots, sort and hash workspaces, temporaries.
    PrivHeap,
    /// Database data: tuples stored in shared buffer blocks.
    Data,
    /// Database indices: b-tree pages stored in shared buffer blocks.
    Index,
    /// Buffer descriptors (control structures for buffer blocks).
    BufDesc,
    /// The buffer lookup hash table (page id → buffer descriptor).
    BufLookup,
    /// The lock manager's Lock hash table.
    LockHash,
    /// The lock manager's Xid (transaction) hash table.
    XidHash,
    /// The `LockMgrLock` spinlock protecting the lock manager ("LockSLock").
    LockMgrLock,
    /// The `BufMgrLock` spinlock protecting the buffer manager.
    BufMgrLock,
    /// Other shared metadata (shared-memory headers, catalog caches, …).
    SharedMisc,
}

/// Coarse grouping of [`DataClass`] used by the paper's Figures 6(b), 8 and 10.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataGroup {
    /// Private data structures (`Priv` in the paper).
    Priv,
    /// Database data (`Data`).
    Data,
    /// Database indices (`Index`).
    Index,
    /// Database control variables (`Metadata`).
    Metadata,
}

impl DataClass {
    /// Every class, in the order the paper's Figure 7 lists them.
    pub const ALL: [DataClass; 10] = [
        DataClass::PrivHeap,
        DataClass::Data,
        DataClass::Index,
        DataClass::BufDesc,
        DataClass::BufLookup,
        DataClass::LockHash,
        DataClass::XidHash,
        DataClass::LockMgrLock,
        DataClass::BufMgrLock,
        DataClass::SharedMisc,
    ];

    /// The coarse group this class belongs to.
    pub fn group(self) -> DataGroup {
        match self {
            DataClass::PrivHeap => DataGroup::Priv,
            DataClass::Data => DataGroup::Data,
            DataClass::Index => DataGroup::Index,
            DataClass::BufDesc
            | DataClass::BufLookup
            | DataClass::LockHash
            | DataClass::XidHash
            | DataClass::LockMgrLock
            | DataClass::BufMgrLock
            | DataClass::SharedMisc => DataGroup::Metadata,
        }
    }

    /// Whether references of this class touch the shared address space.
    pub fn is_shared(self) -> bool {
        !matches!(self, DataClass::PrivHeap)
    }

    /// Label used when rendering the paper's charts.
    pub fn label(self) -> &'static str {
        match self {
            DataClass::PrivHeap => "Priv",
            DataClass::Data => "Data",
            DataClass::Index => "Index",
            DataClass::BufDesc => "BufDesc",
            DataClass::BufLookup => "BufLook",
            DataClass::LockHash => "LockHash",
            DataClass::XidHash => "XidHash",
            DataClass::LockMgrLock => "LockSLock",
            DataClass::BufMgrLock => "BufSLock",
            DataClass::SharedMisc => "SharedMisc",
        }
    }
}

impl DataGroup {
    /// Every group, in the paper's plotting order.
    pub const ALL: [DataGroup; 4] = [
        DataGroup::Priv,
        DataGroup::Data,
        DataGroup::Index,
        DataGroup::Metadata,
    ];

    /// Label used when rendering the paper's charts.
    pub fn label(self) -> &'static str {
        match self {
            DataGroup::Priv => "Priv",
            DataGroup::Data => "Data",
            DataGroup::Index => "Index",
            DataGroup::Metadata => "Metadata",
        }
    }
}

impl std::fmt::Display for DataClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::fmt::Display for DataGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_every_class_once() {
        let mut seen = std::collections::HashSet::new();
        for class in DataClass::ALL {
            assert!(seen.insert(class), "{class:?} listed twice");
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn only_priv_heap_is_private() {
        for class in DataClass::ALL {
            assert_eq!(class.is_shared(), class != DataClass::PrivHeap);
        }
    }

    #[test]
    fn groups_match_paper_structure() {
        assert_eq!(DataClass::PrivHeap.group(), DataGroup::Priv);
        assert_eq!(DataClass::Data.group(), DataGroup::Data);
        assert_eq!(DataClass::Index.group(), DataGroup::Index);
        for class in [
            DataClass::BufDesc,
            DataClass::BufLookup,
            DataClass::LockHash,
            DataClass::XidHash,
            DataClass::LockMgrLock,
            DataClass::BufMgrLock,
            DataClass::SharedMisc,
        ] {
            assert_eq!(class.group(), DataGroup::Metadata);
        }
    }

    #[test]
    fn lock_mgr_lock_uses_paper_label() {
        assert_eq!(DataClass::LockMgrLock.label(), "LockSLock");
        assert_eq!(DataClass::LockMgrLock.to_string(), "LockSLock");
    }

    #[test]
    fn group_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            DataGroup::ALL.iter().map(|g| g.label()).collect();
        assert_eq!(labels.len(), DataGroup::ALL.len());
    }
}
