//! Trace events: classified memory references, busy cycles, and spinlock
//! operations.

use crate::DataClass;

/// A single classified memory reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Simulated virtual address.
    pub addr: u64,
    /// Access width in bytes (1..=8; wider accesses are split by the tracer).
    pub size: u16,
    /// `true` for a store, `false` for a load.
    pub write: bool,
    /// The data structure the reference touches.
    pub class: DataClass,
}

impl MemRef {
    /// Creates a load reference.
    pub fn load(addr: u64, size: u16, class: DataClass) -> Self {
        MemRef {
            addr,
            size,
            write: false,
            class,
        }
    }

    /// Creates a store reference.
    pub fn store(addr: u64, size: u16, class: DataClass) -> Self {
        MemRef {
            addr,
            size,
            write: true,
            class,
        }
    }
}

/// Which spinlock a [`LockToken`] names.
///
/// The simulator needs the lock word's address (to generate the spin reads and
/// the acquiring read-modify-write) and its [`DataClass`] (to attribute the
/// resulting misses).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LockClass {
    /// The lock manager's `LockMgrLock` ("LockSLock" in the paper).
    LockMgr,
    /// The buffer manager's `BufMgrLock`.
    BufMgr,
    /// Any other metalock (shared-memory headers, …).
    Other,
}

impl LockClass {
    /// The data class of references to this lock's word.
    pub fn data_class(self) -> DataClass {
        match self {
            LockClass::LockMgr => DataClass::LockMgrLock,
            LockClass::BufMgr => DataClass::BufMgrLock,
            LockClass::Other => DataClass::SharedMisc,
        }
    }
}

/// A spinlock identity carried by acquire/release events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LockToken {
    /// Address of the lock word in the simulated shared address space.
    pub addr: u64,
    /// Which lock this is, for miss attribution.
    pub class: LockClass,
}

impl LockToken {
    /// Creates a token for the lock word at `addr`.
    pub fn new(addr: u64, class: LockClass) -> Self {
        LockToken { addr, class }
    }
}

/// One entry of a processor's reference trace.
///
/// Spinlock acquisition is represented as an event rather than as raw
/// references because the *number* of spin reads depends on contention, which
/// is only known at simulation time when the four processors' clocks are
/// interleaved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A classified memory reference.
    Ref(MemRef),
    /// Non-memory work: the processor advances this many cycles.
    Busy(u32),
    /// Acquire a metalock, spinning (and re-reading the lock word) while held
    /// by another processor. Time spent spinning is the paper's *MSync*.
    LockAcquire(LockToken),
    /// Release a previously acquired metalock.
    LockRelease(LockToken),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_store_set_direction() {
        let l = MemRef::load(0x10, 8, DataClass::Data);
        assert!(!l.write);
        let s = MemRef::store(0x10, 8, DataClass::Data);
        assert!(s.write);
        assert_eq!(l.addr, s.addr);
    }

    #[test]
    fn lock_class_maps_to_data_class() {
        assert_eq!(LockClass::LockMgr.data_class(), DataClass::LockMgrLock);
        assert_eq!(LockClass::BufMgr.data_class(), DataClass::BufMgrLock);
        assert_eq!(LockClass::Other.data_class(), DataClass::SharedMisc);
    }

    #[test]
    fn event_is_compact() {
        // Traces hold millions of events; keep the representation small.
        assert!(std::mem::size_of::<Event>() <= 24);
    }
}
