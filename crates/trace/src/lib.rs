//! Memory-reference trace model for the DSS workload study.
//!
//! This crate defines the vocabulary shared by the database engine (which
//! *produces* memory references) and the multiprocessor memory-hierarchy
//! simulator (which *consumes* them):
//!
//! * [`DataClass`] — the data structure a reference touches, mirroring the
//!   categories of the HPCA'97 paper (database `Data`, `Index`, the buffer- and
//!   lock-manager metadata structures, and private heap data).
//! * [`MemRef`] / [`Event`] — a single classified memory reference, plus the
//!   busy-cycle and spinlock events interleaved with references.
//! * [`Tracer`] — a cheaply clonable recording handle threaded through the
//!   engine; one per simulated processor.
//! * [`CostModel`] — the per-operation busy-cycle charges that stand in for
//!   the instructions Mint would have executed between references.
//! * [`TraceStats`] — summary statistics over a recorded trace.
//! * [`TraceSource`] / [`EventStream`] — the streaming contract: per-block
//!   checksummed event chunks consumed one at a time, so trace generation
//!   can fuse with simulation in bounded memory at any scale factor (see
//!   [`BlockWriter`], [`BlockReader`], [`FileTraceSource`]).
//! * [`PipelinedTraceSource`] — the same contract produced on background
//!   worker threads through bounded channels, overlapping block production
//!   with simulation while a [`ChunkSequencer`] keeps delivery strictly
//!   in order (bit-identical to the serial path).
//!
//! The paper's methodology applies one correction we reproduce here by
//! construction: accesses to private *stack and static* data are assumed to
//! always hit and are therefore never emitted; only private *heap* references
//! (class [`DataClass::PrivHeap`]) appear in traces.
//!
//! # Example
//!
//! ```
//! use dss_trace::{DataClass, Event, Tracer};
//!
//! let tracer = Tracer::new(0);
//! tracer.busy(12);
//! tracer.read(0x1000_0040, 8, DataClass::Data);
//! tracer.write(0x4000_0000, 8, DataClass::PrivHeap);
//! let trace = tracer.take();
//! assert_eq!(trace.events.len(), 3);
//! assert!(matches!(trace.events[0], Event::Busy(12)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod class;
mod cost;
mod discipline;
mod event;
mod io;
mod pipeline;
mod source;
mod stats;
mod tracer;

pub use analyze::{analyze, ClassLocality, ReuseHistogram, TraceAnalysis, REUSE_BUCKETS};
pub use class::{DataClass, DataGroup};
pub use cost::CostModel;
pub use discipline::{check_lock_discipline, LockDisciplineError};
pub use event::{Event, LockClass, LockToken, MemRef};
pub use io::{
    read_trace, read_trace_blocks, read_trace_file, salvage_scan, salvage_scan_file, write_trace,
    write_trace_blocks, write_trace_file, BlockReader, BlockWriter, SalvageScan, TraceError,
};
pub use pipeline::{
    ChunkSequencer, PipelineSnapshot, PipelineStats, PipelinedTraceSource, DEFAULT_CHANNEL_BLOCKS,
    DEFAULT_REORDER_WINDOW,
};
pub use source::{
    materialize, EventStream, FileTraceSource, ProcPrefix, TraceSource, DEFAULT_BLOCK_EVENTS,
};
pub use stats::TraceStats;
pub use tracer::{Trace, Tracer};
