//! Streaming trace sources: the block-at-a-time contract between trace
//! producers and the memory simulator.
//!
//! The original pipeline materialized every processor's full event vector
//! before the first simulated cycle, which put peak memory on the order of
//! the trace itself — fine at the paper's 10 MB scale factor, prohibitive at
//! SF 0.1 and beyond. This module replaces that contract with two small
//! traits:
//!
//! * [`EventStream`] — one processor's trace, yielded one block of events at
//!   a time into a caller-owned buffer (so a consumer that replays blocks in
//!   place allocates one buffer per processor, ever).
//! * [`TraceSource`] — a reopenable set of per-processor streams. Opening is
//!   cheap and repeatable, so independent simulation points can each stream
//!   the same workload concurrently without sharing cursors.
//!
//! Two implementations cover both ends of the migration:
//! [`TraceSource` for `[Trace]`](TraceSource#impl-TraceSource-for-%5BTrace%5D)
//! adapts already-materialized traces (preserving every existing caller),
//! and [`FileTraceSource`] streams the chunked on-disk format written by
//! [`crate::BlockWriter`], whose per-block checksums and sequential chunk
//! indices make torn or reordered streams a classified [`TraceError`] rather
//! than a silently different workload.

use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

use crate::io::BlockReader;
use crate::{Event, Trace, TraceError};

/// Default number of events per block when slicing a materialized trace:
/// large enough to amortize per-block overhead, small enough (~1.5 MB of
/// events) that per-processor buffers stay trivially bounded.
pub const DEFAULT_BLOCK_EVENTS: usize = 1 << 16;

/// One processor's trace, consumed one block at a time.
pub trait EventStream {
    /// The simulated processor this stream belongs to.
    fn proc_id(&self) -> usize;

    /// Fills `buf` (cleared first) with the next block of events, returning
    /// how many were produced. Zero means the stream is exhausted; further
    /// calls must keep returning zero.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] when the underlying transport fails or the
    /// stream is malformed (truncated, corrupt, checksum mismatch).
    fn next_block(&mut self, buf: &mut Vec<Event>) -> Result<usize, TraceError>;
}

/// A reopenable set of per-processor event streams.
///
/// `Sync` is a supertrait so a source can be shared across simulation worker
/// threads; each worker opens its own streams and no cursor state is shared.
pub trait TraceSource: Sync {
    /// Number of processors (streams) the source yields.
    fn nprocs(&self) -> usize;

    /// Opens fresh streams for all processors, in processor order.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] when a stream cannot be opened (e.g. a
    /// missing or foreign block file).
    fn open(&self) -> Result<Vec<Box<dyn EventStream + '_>>, TraceError>;
}

/// Blanket impl so `&S` is a source wherever `S` is.
impl<S: TraceSource + ?Sized> TraceSource for &S {
    fn nprocs(&self) -> usize {
        (**self).nprocs()
    }

    fn open(&self) -> Result<Vec<Box<dyn EventStream + '_>>, TraceError> {
        (**self).open()
    }
}

/// A stream over an already-materialized trace, yielding
/// [`DEFAULT_BLOCK_EVENTS`]-sized blocks.
struct SliceStream<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl EventStream for SliceStream<'_> {
    fn proc_id(&self) -> usize {
        self.trace.proc_id
    }

    fn next_block(&mut self, buf: &mut Vec<Event>) -> Result<usize, TraceError> {
        buf.clear();
        let n = (self.trace.events.len() - self.pos).min(DEFAULT_BLOCK_EVENTS);
        buf.extend_from_slice(&self.trace.events[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// The materialized adapter: any slice of traces is a [`TraceSource`], so
/// every caller holding the old fully-materialized `Arc<[Trace]>` contract
/// can feed the streaming pipeline unchanged.
impl TraceSource for [Trace] {
    fn nprocs(&self) -> usize {
        self.len()
    }

    fn open(&self) -> Result<Vec<Box<dyn EventStream + '_>>, TraceError> {
        Ok(self
            .iter()
            .map(|trace| Box::new(SliceStream { trace, pos: 0 }) as Box<dyn EventStream>)
            .collect())
    }
}

/// Owned traces are a source too (delegating to the slice impl), so a
/// `'static` trace set can feed adapters that hand the source to worker
/// threads (e.g. [`crate::PipelinedTraceSource`]).
impl TraceSource for Vec<Trace> {
    fn nprocs(&self) -> usize {
        self.len()
    }

    fn open(&self) -> Result<Vec<Box<dyn EventStream + '_>>, TraceError> {
        self.as_slice().open()
    }
}

/// A source restricted to the leading `n` processors of another source — the
/// streaming equivalent of simulating `&traces[..n]` for processor-scaling
/// sweeps.
pub struct ProcPrefix<S> {
    inner: S,
    n: usize,
}

impl<S: TraceSource> ProcPrefix<S> {
    /// Restricts `inner` to its first `min(n, nprocs)` processors.
    pub fn new(inner: S, n: usize) -> Self {
        ProcPrefix { inner, n }
    }
}

impl<S: TraceSource> TraceSource for ProcPrefix<S> {
    fn nprocs(&self) -> usize {
        self.inner.nprocs().min(self.n)
    }

    fn open(&self) -> Result<Vec<Box<dyn EventStream + '_>>, TraceError> {
        let mut streams = self.inner.open()?;
        streams.truncate(self.n);
        Ok(streams)
    }
}

/// A set of on-disk block streams (the [`crate::BlockWriter`] format), one
/// file per processor.
///
/// Opening is just opening files, so any number of simulation points can
/// stream the same workload concurrently; peak memory per consumer is one
/// block buffer per processor regardless of trace length.
#[derive(Clone, Debug)]
pub struct FileTraceSource {
    paths: Vec<PathBuf>,
}

impl FileTraceSource {
    /// A source over explicit per-processor block files, in processor order.
    pub fn new(paths: Vec<PathBuf>) -> Self {
        FileTraceSource { paths }
    }

    /// The conventional block-file path for processor `p` under `dir`.
    pub fn proc_path(dir: &Path, stem: &str, p: usize) -> PathBuf {
        dir.join(format!("{stem}.p{p}.trb"))
    }

    /// A source over the conventional layout `dir/<stem>.p<p>.trb` for
    /// processors `0..nprocs`.
    pub fn in_dir(dir: &Path, stem: &str, nprocs: usize) -> Self {
        FileTraceSource {
            paths: (0..nprocs).map(|p| Self::proc_path(dir, stem, p)).collect(),
        }
    }

    /// The per-processor file paths, in processor order.
    pub fn paths(&self) -> &[PathBuf] {
        &self.paths
    }
}

/// A [`BlockReader`] over a file, wrapping every error with the path.
struct FileStream {
    reader: BlockReader<BufReader<File>>,
    path: PathBuf,
}

fn in_file(path: &Path, e: TraceError) -> TraceError {
    TraceError::InFile {
        path: path.to_path_buf(),
        source: Box::new(e),
    }
}

impl EventStream for FileStream {
    fn proc_id(&self) -> usize {
        self.reader.proc_id()
    }

    fn next_block(&mut self, buf: &mut Vec<Event>) -> Result<usize, TraceError> {
        self.reader
            .next_block(buf)
            .map_err(|e| in_file(&self.path, e))
    }
}

impl TraceSource for FileTraceSource {
    fn nprocs(&self) -> usize {
        self.paths.len()
    }

    fn open(&self) -> Result<Vec<Box<dyn EventStream + '_>>, TraceError> {
        self.paths
            .iter()
            .map(|path| {
                let file = File::open(path)
                    .map_err(|source| in_file(path, TraceError::Io { offset: 0, source }))?;
                let reader =
                    BlockReader::new(BufReader::new(file)).map_err(|e| in_file(path, e))?;
                Ok(Box::new(FileStream {
                    reader,
                    path: path.clone(),
                }) as Box<dyn EventStream>)
            })
            .collect()
    }
}

/// Drains a source into fully-materialized traces — the bridge back from the
/// streaming world for consumers that need random access (tests, analyzers).
///
/// # Errors
///
/// Propagates the first stream error.
pub fn materialize<S: TraceSource + ?Sized>(src: &S) -> Result<Vec<Trace>, TraceError> {
    let mut traces = Vec::with_capacity(src.nprocs());
    let mut block = Vec::new();
    for mut stream in src.open()? {
        let mut events = Vec::new();
        while stream.next_block(&mut block)? > 0 {
            events.extend_from_slice(&block);
        }
        traces.push(Trace {
            proc_id: stream.proc_id(),
            events,
        });
    }
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{write_trace_blocks, DataClass, Tracer};

    fn sample(nprocs: usize, events_per_proc: usize) -> Vec<Trace> {
        (0..nprocs)
            .map(|p| {
                let t = Tracer::new(p);
                for i in 0..events_per_proc as u64 {
                    t.read(0x1_0000_0000 + i * 8, 8, DataClass::Data);
                }
                t.take()
            })
            .collect()
    }

    #[test]
    fn slice_source_roundtrips() {
        let traces = sample(3, 100);
        let back = materialize(&traces[..]).unwrap();
        assert_eq!(back, traces);
    }

    #[test]
    fn slice_source_blocks_are_bounded() {
        let traces = sample(1, DEFAULT_BLOCK_EVENTS + 7);
        let mut streams = traces[..].open().unwrap();
        let mut buf = Vec::new();
        assert_eq!(
            streams[0].next_block(&mut buf).unwrap(),
            DEFAULT_BLOCK_EVENTS
        );
        assert_eq!(streams[0].next_block(&mut buf).unwrap(), 7);
        assert_eq!(streams[0].next_block(&mut buf).unwrap(), 0);
        assert_eq!(
            streams[0].next_block(&mut buf).unwrap(),
            0,
            "stays exhausted"
        );
    }

    #[test]
    fn prefix_limits_processors() {
        let traces = sample(4, 10);
        let prefix = ProcPrefix::new(&traces[..], 2);
        assert_eq!(prefix.nprocs(), 2);
        let back = materialize(&prefix).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back, traces[..2]);
        // A prefix wider than the source is the source.
        assert_eq!(ProcPrefix::new(&traces[..], 9).nprocs(), 4);
    }

    #[test]
    fn file_source_roundtrips_and_reopens() {
        let dir = std::env::temp_dir().join("dss-trace-source-test");
        std::fs::create_dir_all(&dir).unwrap();
        let traces = sample(2, 500);
        for t in &traces {
            let path = FileTraceSource::proc_path(&dir, "q", t.proc_id);
            let mut buf = Vec::new();
            write_trace_blocks(t, &mut buf, 64).unwrap();
            std::fs::write(path, buf).unwrap();
        }
        let src = FileTraceSource::in_dir(&dir, "q", 2);
        assert_eq!(src.nprocs(), 2);
        // Two independent opens see the same events.
        assert_eq!(materialize(&src).unwrap(), traces);
        assert_eq!(materialize(&src).unwrap(), traces);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_source_errors_name_the_path() {
        let src = FileTraceSource::new(vec![PathBuf::from("/no/such/file.trb")]);
        let err = match src.open() {
            Err(e) => e,
            Ok(_) => panic!("opening a missing file must fail"),
        };
        assert_eq!(err.kind(), "io");
        assert!(err.to_string().contains("file.trb"), "{err}");
    }
}
