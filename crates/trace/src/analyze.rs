//! Trace analysis: locality evidence straight from the reference stream.
//!
//! The paper's Section 3 derives its locality claims from inspecting address
//! traces ("a close look at the traces reveals …"). This module computes the
//! same evidence quantitatively:
//!
//! * **footprints** — distinct cache lines touched per data structure,
//! * **sequentiality** — how often a class's next reference lands on the
//!   same or adjacent line (spatial locality),
//! * **reuse distances** — for every reference, the number of *distinct*
//!   lines touched since this line was last referenced (temporal locality;
//!   computed exactly with a Fenwick tree over access times).

use std::collections::{BTreeMap, HashMap};

use crate::{DataClass, Event, Trace};

/// Reuse-distance histogram buckets (upper bounds in distinct lines); the
/// last bucket counts cold (first-touch) references.
pub const REUSE_BUCKETS: [u64; 5] = [0, 16, 256, 4096, 65536];

/// A reuse-distance histogram: one count per [`REUSE_BUCKETS`] bound, one
/// overflow bucket, and one cold bucket.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReuseHistogram {
    /// `counts[i]` = references with distance ≤ `REUSE_BUCKETS[i]` (first
    /// matching bucket); `counts[5]` = larger; `counts[6]` = cold.
    pub counts: [u64; 7],
}

impl ReuseHistogram {
    fn add(&mut self, distance: Option<u64>) {
        match distance {
            None => self.counts[6] += 1,
            Some(d) => {
                let idx = REUSE_BUCKETS.iter().position(|b| d <= *b).unwrap_or(5);
                self.counts[idx] += 1;
            }
        }
    }

    /// Total references recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of (non-cold) references reused within `bound` distinct
    /// lines — a cache of that many lines would hit them.
    pub fn reused_within(&self, bound: u64) -> f64 {
        let covered: u64 = REUSE_BUCKETS
            .iter()
            .zip(&self.counts)
            .filter(|(b, _)| **b <= bound)
            .map(|(_, c)| *c)
            .sum();
        covered as f64 / self.total().max(1) as f64
    }

    /// Fraction of references that are first touches.
    pub fn cold_fraction(&self) -> f64 {
        self.counts[6] as f64 / self.total().max(1) as f64
    }
}

/// Per-class locality metrics for one trace.
#[derive(Clone, Debug, Default)]
pub struct ClassLocality {
    /// References of this class.
    pub refs: u64,
    /// Distinct lines touched.
    pub footprint_lines: u64,
    /// References landing on the same line as the class's previous
    /// reference.
    pub same_line: u64,
    /// References landing on the line adjacent to the previous one.
    pub next_line: u64,
    /// Reuse-distance histogram (in distinct lines, all classes counted
    /// toward the distance).
    pub reuse: ReuseHistogram,
}

impl ClassLocality {
    /// Fraction of references on the same or adjacent line as the previous
    /// reference of this class — the spatial-locality signal.
    pub fn sequentiality(&self) -> f64 {
        (self.same_line + self.next_line) as f64 / self.refs.max(1) as f64
    }
}

/// Full analysis of one trace at a given line granularity.
#[derive(Clone, Debug, Default)]
pub struct TraceAnalysis {
    /// Line size used (bytes).
    pub line_size: u64,
    /// Per-class metrics, only for classes that appear.
    pub classes: BTreeMap<DataClass, ClassLocality>,
}

impl TraceAnalysis {
    /// Metrics for `class` (zeroed if absent).
    pub fn class(&self, class: DataClass) -> ClassLocality {
        self.classes.get(&class).cloned().unwrap_or_default()
    }

    /// Total distinct lines touched by the whole trace.
    pub fn total_footprint_lines(&self) -> u64 {
        self.classes.values().map(|c| c.footprint_lines).sum()
    }
}

/// Analyzes a trace at `line_size` granularity.
///
/// Runs in O(n log n) over the reference count: reuse distances use a
/// Fenwick tree over access timestamps, the textbook exact algorithm.
///
/// # Panics
///
/// Panics if `line_size` is not a power of two.
///
/// # Example
///
/// ```
/// use dss_trace::{analyze, DataClass, Tracer};
///
/// let t = Tracer::new(0);
/// t.read(0x1000, 8, DataClass::Data);
/// t.read(0x1008, 8, DataClass::Data); // same 64-byte line
/// t.read(0x1000, 8, DataClass::Data); // immediate reuse
/// let a = analyze(&t.take(), 64);
/// let data = a.class(DataClass::Data);
/// assert_eq!(data.footprint_lines, 1);
/// assert_eq!(data.reuse.cold_fraction(), 1.0 / 3.0);
/// ```
pub fn analyze(trace: &Trace, line_size: u64) -> TraceAnalysis {
    assert!(
        line_size.is_power_of_two(),
        "line size must be a power of two"
    );
    let mask = !(line_size - 1);

    // Pass 1: count line-granularity references to size the Fenwick tree.
    let nrefs = trace.iter().filter(|e| matches!(e, Event::Ref(_))).count();
    let mut fenwick = Fenwick::new(nrefs + 1);
    let mut last_access: HashMap<u64, usize> = HashMap::new();
    let mut last_line_by_class: HashMap<DataClass, u64> = HashMap::new();
    let mut analysis = TraceAnalysis {
        line_size,
        classes: BTreeMap::new(),
    };

    let mut t = 0usize;
    for event in trace {
        let Event::Ref(r) = event else { continue };
        t += 1;
        let line = r.addr & mask;
        let entry = analysis.classes.entry(r.class).or_default();
        entry.refs += 1;

        // Spatial signal: same / adjacent line as this class's previous ref.
        match last_line_by_class.get(&r.class) {
            Some(&prev) if prev == line => entry.same_line += 1,
            Some(&prev) if prev + line_size == line || line + line_size == prev => {
                entry.next_line += 1
            }
            _ => {}
        }
        last_line_by_class.insert(r.class, line);

        // Temporal signal: exact reuse distance in distinct lines.
        match last_access.insert(line, t) {
            None => {
                entry.reuse.add(None);
                fenwick.add(t, 1);
            }
            Some(prev_t) => {
                // Distinct lines touched strictly between prev_t and now:
                // lines whose most recent access lies in (prev_t, t).
                let distance = fenwick.range_sum(prev_t + 1, t);
                entry.reuse.add(Some(distance));
                fenwick.add(prev_t, -1);
                fenwick.add(t, 1);
            }
        }
    }
    for (_, entry) in analysis.classes.iter_mut() {
        // Footprint: lines whose last access carries this class… cheaper:
        // recompute below.
        entry.footprint_lines = 0;
    }
    // Footprints per class (distinct lines, a line counted once per class
    // that touches it).
    let mut seen: HashMap<(DataClass, u64), ()> = HashMap::new();
    for event in trace {
        let Event::Ref(r) = event else { continue };
        let line = r.addr & mask;
        if seen.insert((r.class, line), ()).is_none() {
            // The entry exists: the counting pass above visited this event.
            if let Some(entry) = analysis.classes.get_mut(&r.class) {
                entry.footprint_lines += 1;
            }
        }
    }
    analysis
}

/// A Fenwick (binary indexed) tree over access timestamps.
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    fn prefix_sum(&self, mut i: usize) -> i64 {
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum over `[lo, hi)`.
    fn range_sum(&self, lo: usize, hi: usize) -> u64 {
        if hi <= lo {
            return 0;
        }
        (self.prefix_sum(hi - 1) - self.prefix_sum(lo.saturating_sub(1))).max(0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn trace_of(addrs: &[(u64, DataClass)]) -> Trace {
        let t = Tracer::new(0);
        for (addr, class) in addrs {
            t.read(*addr, 8, *class);
        }
        t.take()
    }

    #[test]
    fn footprint_counts_distinct_lines() {
        let a = analyze(
            &trace_of(&[
                (0x100, DataClass::Data),
                (0x108, DataClass::Data),  // same line
                (0x140, DataClass::Data),  // next line
                (0x100, DataClass::Index), // same address, other class
            ]),
            64,
        );
        assert_eq!(a.class(DataClass::Data).footprint_lines, 2);
        assert_eq!(a.class(DataClass::Index).footprint_lines, 1);
        assert_eq!(a.total_footprint_lines(), 3);
    }

    #[test]
    fn sequentiality_detects_streams() {
        // A pure stream: every ref on the next line.
        let stream: Vec<(u64, DataClass)> = (0..50)
            .map(|i| (0x1000 + i * 64, DataClass::Data))
            .collect();
        let a = analyze(&trace_of(&stream), 64);
        let c = a.class(DataClass::Data);
        assert!(c.sequentiality() > 0.95, "{}", c.sequentiality());

        // A scatter: strides far beyond a line.
        let scatter: Vec<(u64, DataClass)> = (0..50)
            .map(|i| (0x1000 + i * 4096, DataClass::PrivHeap))
            .collect();
        let a = analyze(&trace_of(&scatter), 64);
        assert_eq!(a.class(DataClass::PrivHeap).sequentiality(), 0.0);
    }

    #[test]
    fn reuse_distances_are_exact() {
        // Access lines A B C A: A's reuse distance is 2 (B and C).
        let a = analyze(
            &trace_of(&[
                (0x0000, DataClass::Data),
                (0x1000, DataClass::Data),
                (0x2000, DataClass::Data),
                (0x0000, DataClass::Data),
            ]),
            64,
        );
        let reuse = &a.class(DataClass::Data).reuse;
        assert_eq!(reuse.counts[6], 3, "three cold touches");
        // Distance 2 falls in the ≤16 bucket (index 1).
        assert_eq!(reuse.counts[1], 1);
    }

    #[test]
    fn immediate_reuse_is_distance_zero() {
        let a = analyze(
            &trace_of(&[
                (0x0, DataClass::Data),
                (0x8, DataClass::Data),
                (0x0, DataClass::Data),
            ]),
            64,
        );
        let reuse = &a.class(DataClass::Data).reuse;
        // Two hits on the resident line at distance 0.
        assert_eq!(reuse.counts[0], 2);
        assert_eq!(reuse.cold_fraction(), 1.0 / 3.0);
    }

    #[test]
    fn reused_within_is_monotone() {
        let mixed: Vec<(u64, DataClass)> = (0..200)
            .map(|i| (((i * 37) % 50) * 64, DataClass::Data))
            .collect();
        let a = analyze(&trace_of(&mixed), 64);
        let r = &a.class(DataClass::Data).reuse;
        assert!(r.reused_within(16) <= r.reused_within(256));
        assert!(r.reused_within(256) <= r.reused_within(65536));
        assert!(r.reused_within(65536) <= 1.0);
    }

    #[test]
    fn no_reuse_in_a_pure_scan() {
        let scan: Vec<(u64, DataClass)> = (0..100).map(|i| (i * 64, DataClass::Data)).collect();
        let a = analyze(&trace_of(&scan), 64);
        assert_eq!(a.class(DataClass::Data).reuse.cold_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        analyze(&Trace::new(0), 48);
    }
}
