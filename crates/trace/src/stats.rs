//! Summary statistics over recorded traces.

use std::collections::BTreeMap;

use crate::{DataClass, Event, Trace};

/// Counters summarizing one trace: reference counts by class and direction,
/// busy cycles, and lock activity.
///
/// Used by calibration tests — e.g. the paper observes about five times more
/// private than shared references, which [`TraceStats::priv_to_shared_ratio`]
/// checks directly.
///
/// # Example
///
/// ```
/// use dss_trace::{DataClass, Tracer, TraceStats};
///
/// let t = Tracer::new(0);
/// t.read(0x100, 8, DataClass::Data);
/// t.write(0x900, 8, DataClass::PrivHeap);
/// let stats = TraceStats::from_trace(&t.take());
/// assert_eq!(stats.total_refs(), 2);
/// assert_eq!(stats.reads(DataClass::Data), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    reads: BTreeMap<DataClass, u64>,
    writes: BTreeMap<DataClass, u64>,
    /// Total busy cycles charged in the trace.
    pub busy_cycles: u64,
    /// Number of lock acquisitions.
    pub lock_acquires: u64,
    /// Number of lock releases.
    pub lock_releases: u64,
}

impl TraceStats {
    /// Computes statistics over `trace`.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut s = TraceStats::default();
        s.accumulate(&trace.events);
        s
    }

    /// Folds a block of events into the counters — the incremental form used
    /// by streaming consumers, for which the whole trace never exists at
    /// once. Accumulating a trace's blocks in order (at any block size)
    /// equals [`TraceStats::from_trace`] over the materialized trace.
    pub fn accumulate(&mut self, events: &[Event]) {
        for event in events {
            match event {
                Event::Ref(r) => {
                    let map = if r.write {
                        &mut self.writes
                    } else {
                        &mut self.reads
                    };
                    *map.entry(r.class).or_insert(0) += 1;
                }
                Event::Busy(c) => self.busy_cycles += *c as u64,
                Event::LockAcquire(_) => self.lock_acquires += 1,
                Event::LockRelease(_) => self.lock_releases += 1,
            }
        }
    }

    /// Computes combined statistics over several traces.
    pub fn from_traces<'a>(traces: impl IntoIterator<Item = &'a Trace>) -> Self {
        let mut total = TraceStats::default();
        for t in traces {
            total.merge(&Self::from_trace(t));
        }
        total
    }

    /// Adds another set of counters into this one.
    pub fn merge(&mut self, other: &TraceStats) {
        for (class, n) in &other.reads {
            *self.reads.entry(*class).or_insert(0) += n;
        }
        for (class, n) in &other.writes {
            *self.writes.entry(*class).or_insert(0) += n;
        }
        self.busy_cycles += other.busy_cycles;
        self.lock_acquires += other.lock_acquires;
        self.lock_releases += other.lock_releases;
    }

    /// Load references of `class`.
    pub fn reads(&self, class: DataClass) -> u64 {
        self.reads.get(&class).copied().unwrap_or(0)
    }

    /// Store references of `class`.
    pub fn writes(&self, class: DataClass) -> u64 {
        self.writes.get(&class).copied().unwrap_or(0)
    }

    /// All references (loads + stores) of `class`.
    pub fn refs(&self, class: DataClass) -> u64 {
        self.reads(class) + self.writes(class)
    }

    /// All references in the trace.
    pub fn total_refs(&self) -> u64 {
        DataClass::ALL.iter().map(|c| self.refs(*c)).sum()
    }

    /// References to private data.
    pub fn private_refs(&self) -> u64 {
        self.refs(DataClass::PrivHeap)
    }

    /// References to shared data (everything that is not private heap).
    pub fn shared_refs(&self) -> u64 {
        self.total_refs() - self.private_refs()
    }

    /// Ratio of private to shared references; the paper reports roughly 5.
    ///
    /// Returns `None` if the trace has no shared references.
    pub fn priv_to_shared_ratio(&self) -> Option<f64> {
        let shared = self.shared_refs();
        (shared > 0).then(|| self.private_refs() as f64 / shared as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LockClass, LockToken, Tracer};

    fn sample_trace() -> Trace {
        let t = Tracer::new(0);
        t.busy(100);
        t.read(0x1000, 8, DataClass::Data);
        t.read(0x2000, 8, DataClass::Index);
        t.write(0x9000, 16, DataClass::PrivHeap); // splits into two stores
        t.lock_acquire(LockToken::new(0x40, LockClass::LockMgr));
        t.lock_release(LockToken::new(0x40, LockClass::LockMgr));
        t.take()
    }

    #[test]
    fn counts_by_class_and_direction() {
        let s = TraceStats::from_trace(&sample_trace());
        assert_eq!(s.reads(DataClass::Data), 1);
        assert_eq!(s.reads(DataClass::Index), 1);
        assert_eq!(s.writes(DataClass::PrivHeap), 2);
        assert_eq!(s.total_refs(), 4);
        assert_eq!(s.busy_cycles, 100);
        assert_eq!(s.lock_acquires, 1);
        assert_eq!(s.lock_releases, 1);
    }

    #[test]
    fn shared_and_private_partition_total() {
        let s = TraceStats::from_trace(&sample_trace());
        assert_eq!(s.private_refs() + s.shared_refs(), s.total_refs());
        assert_eq!(s.private_refs(), 2);
        assert_eq!(s.shared_refs(), 2);
        assert_eq!(s.priv_to_shared_ratio(), Some(1.0));
    }

    #[test]
    fn ratio_none_without_shared_refs() {
        let t = Tracer::new(0);
        t.write(0x9000, 8, DataClass::PrivHeap);
        let s = TraceStats::from_trace(&t.take());
        assert_eq!(s.priv_to_shared_ratio(), None);
    }

    #[test]
    fn merge_adds_counters() {
        let a = sample_trace();
        let b = sample_trace();
        let merged = TraceStats::from_traces([&a, &b]);
        assert_eq!(merged.total_refs(), 8);
        assert_eq!(merged.busy_cycles, 200);
    }

    #[test]
    fn accumulating_blocks_matches_from_trace_at_any_block_size() {
        let trace = sample_trace();
        let whole = TraceStats::from_trace(&trace);
        for block in 1..=trace.events.len() {
            let mut s = TraceStats::default();
            for chunk in trace.events.chunks(block) {
                s.accumulate(chunk);
            }
            assert_eq!(s, whole, "block size {block}");
        }
    }
}
