//! Lock-discipline validation over a recorded trace.
//!
//! The engine's spinlocks are non-reentrant and the simulator's deterministic
//! interleaver parks waiters until the holder releases, so a well-formed
//! per-processor trace must use its locks in a strict stack discipline: every
//! [`crate::Event::LockRelease`] matches the most recent unreleased
//! [`crate::Event::LockAcquire`] of the same address, no held lock is
//! acquired again, and nothing is still held when the trace ends. This is
//! also the soundness precondition of the happens-before race detector in
//! `dss-check` — its vector clocks assume acquire/release pairs bracket
//! critical sections — so [`check_lock_discipline`] is run before any
//! race analysis and exposed here for tests over generated traces.

use std::fmt;

use crate::{Event, Trace};

/// A breach of the per-processor lock stack discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockDisciplineError {
    /// A lock was released without being held.
    ReleaseUnheld {
        /// Index of the offending event in the trace.
        index: usize,
        /// Lock word address released.
        addr: u64,
    },
    /// A release crossed an inner critical section: the innermost held lock
    /// was a different one.
    NotNested {
        /// Index of the offending release in the trace.
        index: usize,
        /// Lock word address released.
        addr: u64,
        /// The innermost held lock that should have been released first.
        innermost: u64,
    },
    /// A lock already held was acquired again (the non-reentrant spinlock
    /// would self-deadlock).
    Reacquired {
        /// Index of the offending acquire in the trace.
        index: usize,
        /// Lock word address acquired twice.
        addr: u64,
    },
    /// The trace ended with a lock still held.
    HeldAtEnd {
        /// Index of the acquire that was never released.
        index: usize,
        /// Lock word address still held.
        addr: u64,
    },
}

impl LockDisciplineError {
    /// Index of the event (acquire or release) the violation points at.
    pub fn index(&self) -> usize {
        match *self {
            LockDisciplineError::ReleaseUnheld { index, .. }
            | LockDisciplineError::NotNested { index, .. }
            | LockDisciplineError::Reacquired { index, .. }
            | LockDisciplineError::HeldAtEnd { index, .. } => index,
        }
    }
}

impl fmt::Display for LockDisciplineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LockDisciplineError::ReleaseUnheld { index, addr } => {
                write!(f, "event {index}: release of {addr:#x} which is not held")
            }
            LockDisciplineError::NotNested {
                index,
                addr,
                innermost,
            } => write!(
                f,
                "event {index}: release of {addr:#x} while {innermost:#x} \
                 (acquired later) is still held — critical sections must nest"
            ),
            LockDisciplineError::Reacquired { index, addr } => {
                write!(
                    f,
                    "event {index}: acquire of {addr:#x} which is already held"
                )
            }
            LockDisciplineError::HeldAtEnd { index, addr } => write!(
                f,
                "trace ends with {addr:#x} still held (acquired at event {index})"
            ),
        }
    }
}

/// Checks that `trace` acquires and releases its locks in a balanced,
/// correctly nested (stack) discipline with no re-acquisition of a held lock
/// and nothing held at the end.
///
/// # Errors
///
/// Returns the first violation in trace order.
pub fn check_lock_discipline(trace: &Trace) -> Result<(), LockDisciplineError> {
    // (lock address, index of its acquire), innermost last. Traces hold at
    // most a couple of locks at once, so a linear scan beats any map.
    let mut held: Vec<(u64, usize)> = Vec::new();
    for (index, event) in trace.events.iter().enumerate() {
        match event {
            Event::LockAcquire(tok) => {
                if held.iter().any(|&(a, _)| a == tok.addr) {
                    return Err(LockDisciplineError::Reacquired {
                        index,
                        addr: tok.addr,
                    });
                }
                held.push((tok.addr, index));
            }
            Event::LockRelease(tok) => match held.last().copied() {
                Some((innermost, _)) if innermost == tok.addr => {
                    held.pop();
                }
                Some((innermost, _)) => {
                    return Err(if held.iter().any(|&(a, _)| a == tok.addr) {
                        LockDisciplineError::NotNested {
                            index,
                            addr: tok.addr,
                            innermost,
                        }
                    } else {
                        LockDisciplineError::ReleaseUnheld {
                            index,
                            addr: tok.addr,
                        }
                    });
                }
                None => {
                    return Err(LockDisciplineError::ReleaseUnheld {
                        index,
                        addr: tok.addr,
                    });
                }
            },
            Event::Busy(_) | Event::Ref(_) => {}
        }
    }
    if let Some(&(addr, index)) = held.first() {
        return Err(LockDisciplineError::HeldAtEnd { index, addr });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataClass, LockClass, LockToken, Tracer};

    fn tok(addr: u64) -> LockToken {
        LockToken::new(addr, LockClass::Other)
    }

    #[test]
    fn nested_sections_pass() {
        let t = Tracer::new(0);
        t.lock_acquire(tok(0x10));
        t.read(0x1_0000_0000, 8, DataClass::LockHash);
        t.lock_acquire(tok(0x20));
        t.write(0x1_0000_0100, 8, DataClass::BufDesc);
        t.lock_release(tok(0x20));
        t.lock_release(tok(0x10));
        assert_eq!(check_lock_discipline(&t.take()), Ok(()));
    }

    #[test]
    fn release_of_unheld_lock_is_flagged() {
        let t = Tracer::new(0);
        t.lock_release(tok(0x10));
        assert_eq!(
            check_lock_discipline(&t.take()),
            Err(LockDisciplineError::ReleaseUnheld {
                index: 0,
                addr: 0x10
            })
        );
    }

    #[test]
    fn crossed_sections_are_flagged() {
        let t = Tracer::new(0);
        t.lock_acquire(tok(0x10));
        t.lock_acquire(tok(0x20));
        t.lock_release(tok(0x10)); // outer before inner
        let err = check_lock_discipline(&t.take()).unwrap_err();
        assert_eq!(
            err,
            LockDisciplineError::NotNested {
                index: 2,
                addr: 0x10,
                innermost: 0x20
            }
        );
        assert_eq!(err.index(), 2);
    }

    #[test]
    fn reacquire_of_held_lock_is_flagged() {
        let t = Tracer::new(0);
        t.lock_acquire(tok(0x10));
        t.lock_acquire(tok(0x10));
        assert_eq!(
            check_lock_discipline(&t.take()),
            Err(LockDisciplineError::Reacquired {
                index: 1,
                addr: 0x10
            })
        );
    }

    #[test]
    fn lock_held_at_end_is_flagged() {
        let t = Tracer::new(0);
        t.busy(5);
        t.lock_acquire(tok(0x10));
        assert_eq!(
            check_lock_discipline(&t.take()),
            Err(LockDisciplineError::HeldAtEnd {
                index: 1,
                addr: 0x10
            })
        );
    }

    #[test]
    fn errors_render_addresses() {
        let e = LockDisciplineError::HeldAtEnd {
            index: 7,
            addr: 0xabc,
        };
        assert!(e.to_string().contains("0xabc"));
        assert!(e.to_string().contains("event 7"));
    }
}
