//! The recording handle threaded through the database engine.

use std::cell::RefCell;
use std::io::{self, Write};
use std::rc::Rc;

use crate::io::BlockWriter;
use crate::{DataClass, Event, LockToken, MemRef};

/// Maximum width of a single emitted reference; wider accesses are split.
const MAX_REF_BYTES: u64 = 8;

/// A recorded per-processor reference trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// The simulated processor that produced this trace.
    pub proc_id: usize,
    /// The events, in program order.
    pub events: Vec<Event>,
}

impl Trace {
    /// Creates an empty trace for `proc_id`.
    pub fn new(proc_id: usize) -> Self {
        Trace {
            proc_id,
            events: Vec::new(),
        }
    }

    /// Number of events in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// A block sink draining the buffer to a [`BlockWriter`] as it fills, so a
/// streaming tracer holds at most one block of events in memory.
struct Sink {
    writer: BlockWriter<Box<dyn Write>>,
    block_events: usize,
    events_emitted: u64,
    /// Blocks still to *discard* instead of write: a resumed recording
    /// ([`Tracer::with_sink_resume`]) replays generation from the start, and
    /// the first `skip_blocks` blocks are already durable in the salvaged
    /// file prefix. Zero for a fresh recording.
    skip_blocks: u64,
    /// First write failure, deferred: the engine's trace calls cannot carry
    /// errors, so the failure surfaces at [`Tracer::finish_sink`].
    error: Option<io::Error>,
}

impl std::fmt::Debug for Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sink")
            .field("block_events", &self.block_events)
            .field("events_emitted", &self.events_emitted)
            .field("skip_blocks", &self.skip_blocks)
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

#[derive(Debug, Default)]
struct TraceBuffer {
    events: Vec<Event>,
    /// Busy cycles accumulated since the last non-busy event, coalesced to
    /// keep traces compact.
    pending_busy: u64,
    enabled: bool,
    sink: Option<Sink>,
}

impl TraceBuffer {
    fn flush_busy(&mut self) {
        while self.pending_busy > 0 {
            let chunk = self.pending_busy.min(u32::MAX as u64) as u32;
            self.push(Event::Busy(chunk));
            self.pending_busy -= chunk as u64;
        }
    }

    /// Appends one event, draining a full block to the sink when streaming.
    fn push(&mut self, event: Event) {
        self.events.push(event);
        if let Some(sink) = &mut self.sink {
            if self.events.len() >= sink.block_events {
                if sink.skip_blocks > 0 {
                    // Already durable in the salvaged prefix; discard.
                    sink.skip_blocks -= 1;
                } else if sink.error.is_none() {
                    if let Err(e) = sink.writer.write_block(&self.events) {
                        sink.error = Some(e);
                    }
                }
                sink.events_emitted += self.events.len() as u64;
                self.events.clear();
            }
        }
    }
}

/// A cheaply clonable recording handle for one simulated processor.
///
/// The engine's layers (buffer cache, lock manager, b-tree, executor) all
/// receive a `Tracer` and emit classified references through it. Cloning
/// shares the underlying buffer, so a single processor's components append to
/// one program-ordered stream.
///
/// Recording can be disabled (see [`Tracer::set_enabled`]) to build the
/// database image or run cache warm-up work without recording it.
///
/// # Example
///
/// ```
/// use dss_trace::{DataClass, Tracer};
///
/// let t = Tracer::new(0);
/// t.copy(0x1000, DataClass::Data, 0x9000, DataClass::PrivHeap, 24);
/// // 24 bytes copied in 8-byte strides: 3 loads + 3 stores.
/// assert_eq!(t.take().events.len(), 6);
/// ```
#[derive(Clone, Debug)]
pub struct Tracer {
    proc_id: usize,
    buf: Rc<RefCell<TraceBuffer>>,
}

impl Tracer {
    /// Creates an enabled tracer for simulated processor `proc_id`.
    pub fn new(proc_id: usize) -> Self {
        Tracer {
            proc_id,
            buf: Rc::new(RefCell::new(TraceBuffer {
                events: Vec::new(),
                pending_busy: 0,
                enabled: true,
                sink: None,
            })),
        }
    }

    /// Creates a tracer that discards everything (for untraced setup work).
    pub fn disabled() -> Self {
        let t = Tracer::new(usize::MAX);
        t.set_enabled(false);
        t
    }

    /// Creates a streaming tracer: recorded events drain to `w` as
    /// [`crate::BlockWriter`] blocks of `block_events` events, so the tracer
    /// holds at most one block in memory however long the recording runs.
    /// The stream header is written immediately; call
    /// [`Tracer::finish_sink`] when recording ends to flush the final
    /// partial block and the end-of-stream marker.
    ///
    /// # Errors
    ///
    /// Propagates the header write failure. Later write failures are
    /// deferred and surface at [`Tracer::finish_sink`].
    ///
    /// # Panics
    ///
    /// Panics if `block_events` is zero.
    pub fn with_sink(proc_id: usize, block_events: usize, w: Box<dyn Write>) -> io::Result<Self> {
        assert!(block_events > 0, "block_events must be positive");
        let writer = BlockWriter::new(w, proc_id)?;
        let t = Tracer::new(proc_id);
        t.buf.borrow_mut().sink = Some(Sink {
            writer,
            block_events,
            events_emitted: 0,
            skip_blocks: 0,
            error: None,
        });
        Ok(t)
    }

    /// Creates a streaming tracer that *resumes* a crashed recording: `w`
    /// must be positioned at the end of a salvaged prefix already holding the
    /// stream header and `salvaged_blocks` checksum-valid blocks (see
    /// `dss_trace::salvage_scan`). Because generation is deterministic, the
    /// caller replays it from the start; the first `salvaged_blocks` blocks
    /// are discarded instead of rewritten, and everything after them is
    /// appended with the correct chunk sequence. No header is written.
    ///
    /// # Panics
    ///
    /// Panics if `block_events` is zero. The block size must match the one
    /// the salvaged prefix was recorded with, or the chunk boundaries — and
    /// with them the skip accounting — would drift; the caller owns that
    /// invariant (a mismatch surfaces at [`Tracer::finish_sink`] or as a
    /// chunk-sequence error on read-back).
    pub fn with_sink_resume(
        proc_id: usize,
        block_events: usize,
        w: Box<dyn Write>,
        salvaged_blocks: u64,
    ) -> Self {
        assert!(block_events > 0, "block_events must be positive");
        let t = Tracer::new(proc_id);
        t.buf.borrow_mut().sink = Some(Sink {
            writer: BlockWriter::resume(w, salvaged_blocks),
            block_events,
            events_emitted: 0,
            skip_blocks: salvaged_blocks,
            error: None,
        });
        t
    }

    /// Ends a streaming recording: flushes pending busy cycles, the final
    /// partial block, and the end-of-stream marker, returning the total
    /// number of events emitted. The tracer reverts to plain in-memory
    /// recording afterwards.
    ///
    /// # Errors
    ///
    /// Surfaces the first deferred block-write failure, or the final
    /// flush/marker failure.
    ///
    /// # Panics
    ///
    /// Panics if the tracer has no sink (not created by
    /// [`Tracer::with_sink`], or already finished).
    pub fn finish_sink(&self) -> io::Result<u64> {
        let mut buf = self.buf.borrow_mut();
        buf.flush_busy();
        let mut sink = buf.sink.take().expect("finish_sink on a sinkless tracer");
        if let Some(e) = sink.error.take() {
            return Err(e);
        }
        if sink.skip_blocks > 0 {
            // A resumed recording with skips left at finish: the crash must
            // have landed between the final partial block and the end
            // marker, so that partial block is already durable and the
            // regenerated copy is discarded. Anything else means the
            // salvaged prefix holds blocks this deterministic regeneration
            // never produced — refuse rather than write a scrambled stream.
            if sink.skip_blocks > 1 || buf.events.is_empty() {
                buf.events.clear();
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "salvaged prefix holds {} block(s) beyond the regenerated stream",
                        sink.skip_blocks
                    ),
                ));
            }
            sink.skip_blocks -= 1;
        } else {
            sink.writer.write_block(&buf.events)?;
        }
        sink.events_emitted += buf.events.len() as u64;
        buf.events.clear();
        sink.writer.finish()?;
        Ok(sink.events_emitted)
    }

    /// The simulated processor this tracer records for.
    pub fn proc_id(&self) -> usize {
        self.proc_id
    }

    /// Enables or disables recording.
    pub fn set_enabled(&self, enabled: bool) {
        self.buf.borrow_mut().enabled = enabled;
    }

    /// Whether recording is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.buf.borrow().enabled
    }

    /// Number of events recorded so far (excluding coalesced pending busy).
    pub fn len(&self) -> usize {
        self.buf.borrow().events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0 && self.buf.borrow().pending_busy == 0
    }

    /// Records a load of `size` bytes at `addr`, split into at most 8-byte
    /// references.
    pub fn read(&self, addr: u64, size: u64, class: DataClass) {
        self.access(addr, size, false, class);
    }

    /// Records a store of `size` bytes at `addr`, split into at most 8-byte
    /// references.
    pub fn write(&self, addr: u64, size: u64, class: DataClass) {
        self.access(addr, size, true, class);
    }

    /// Records a memory-to-memory copy: paired loads from `src` and stores to
    /// `dst` in 8-byte strides, as a word-copy loop would issue them.
    pub fn copy(&self, src: u64, src_class: DataClass, dst: u64, dst_class: DataClass, len: u64) {
        let mut off = 0;
        while off < len {
            let chunk = (len - off).min(MAX_REF_BYTES);
            self.access(src + off, chunk, false, src_class);
            self.access(dst + off, chunk, true, dst_class);
            off += chunk;
        }
    }

    /// Records `cycles` of non-memory work. Consecutive busy charges are
    /// coalesced into a single event.
    pub fn busy(&self, cycles: u32) {
        let mut buf = self.buf.borrow_mut();
        if buf.enabled {
            buf.pending_busy += cycles as u64;
        }
    }

    /// Records a metalock acquisition.
    pub fn lock_acquire(&self, token: LockToken) {
        let mut buf = self.buf.borrow_mut();
        if buf.enabled {
            buf.flush_busy();
            buf.push(Event::LockAcquire(token));
        }
    }

    /// Records a metalock release.
    pub fn lock_release(&self, token: LockToken) {
        let mut buf = self.buf.borrow_mut();
        if buf.enabled {
            buf.flush_busy();
            buf.push(Event::LockRelease(token));
        }
    }

    /// Drains the recorded events into a [`Trace`], leaving the tracer empty
    /// (and still usable).
    pub fn take(&self) -> Trace {
        let mut buf = self.buf.borrow_mut();
        buf.flush_busy();
        Trace {
            proc_id: self.proc_id,
            events: std::mem::take(&mut buf.events),
        }
    }

    fn access(&self, addr: u64, size: u64, write: bool, class: DataClass) {
        let mut buf = self.buf.borrow_mut();
        if !buf.enabled {
            return;
        }
        buf.flush_busy();
        let mut off = 0;
        while off < size {
            let chunk = (size - off).min(MAX_REF_BYTES);
            buf.push(Event::Ref(MemRef {
                addr: addr + off,
                size: chunk as u16,
                write,
                class,
            }));
            off += chunk;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LockClass;

    #[test]
    fn busy_cycles_coalesce() {
        let t = Tracer::new(0);
        t.busy(10);
        t.busy(5);
        t.read(0x100, 4, DataClass::Data);
        t.busy(3);
        let trace = t.take();
        assert_eq!(
            trace.events,
            vec![
                Event::Busy(15),
                Event::Ref(MemRef::load(0x100, 4, DataClass::Data)),
                Event::Busy(3),
            ]
        );
    }

    #[test]
    fn wide_accesses_split_into_words() {
        let t = Tracer::new(0);
        t.read(0x100, 20, DataClass::Index);
        let trace = t.take();
        assert_eq!(trace.events.len(), 3);
        assert_eq!(
            trace.events[0],
            Event::Ref(MemRef::load(0x100, 8, DataClass::Index))
        );
        assert_eq!(
            trace.events[1],
            Event::Ref(MemRef::load(0x108, 8, DataClass::Index))
        );
        assert_eq!(
            trace.events[2],
            Event::Ref(MemRef::load(0x110, 4, DataClass::Index))
        );
    }

    #[test]
    fn copy_interleaves_loads_and_stores() {
        let t = Tracer::new(1);
        t.copy(0x100, DataClass::Data, 0x900, DataClass::PrivHeap, 16);
        let trace = t.take();
        assert_eq!(trace.proc_id, 1);
        assert_eq!(trace.events.len(), 4);
        assert!(matches!(
            trace.events[0],
            Event::Ref(MemRef { write: false, .. })
        ));
        assert!(matches!(
            trace.events[1],
            Event::Ref(MemRef {
                write: true,
                class: DataClass::PrivHeap,
                ..
            })
        ));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.busy(100);
        t.read(0x100, 8, DataClass::Data);
        t.lock_acquire(LockToken::new(0x10, LockClass::LockMgr));
        assert!(t.take().is_empty());
    }

    #[test]
    fn enable_toggle_resumes_recording() {
        let t = Tracer::new(0);
        t.set_enabled(false);
        t.read(0x100, 8, DataClass::Data);
        t.set_enabled(true);
        t.read(0x200, 8, DataClass::Data);
        let trace = t.take();
        assert_eq!(trace.events.len(), 1);
        assert_eq!(
            trace.events[0],
            Event::Ref(MemRef::load(0x200, 8, DataClass::Data))
        );
    }

    #[test]
    fn take_leaves_tracer_reusable() {
        let t = Tracer::new(0);
        t.read(0x100, 8, DataClass::Data);
        assert_eq!(t.take().len(), 1);
        assert!(t.is_empty());
        t.read(0x200, 8, DataClass::Data);
        assert_eq!(t.take().len(), 1);
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = Tracer::new(0);
        let t2 = t.clone();
        t.read(0x100, 8, DataClass::Data);
        t2.read(0x200, 8, DataClass::Index);
        let trace = t.take();
        assert_eq!(trace.events.len(), 2);
    }

    #[test]
    fn sinked_tracer_streams_blocks_and_bounds_memory() {
        use crate::read_trace_blocks;
        use std::cell::RefCell;
        use std::rc::Rc;

        // A shared Vec<u8> sink (single-threaded, like the tracer itself).
        #[derive(Clone, Default)]
        struct Shared(Rc<RefCell<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let out = Shared::default();
        let t = Tracer::with_sink(2, 4, Box::new(out.clone())).unwrap();
        let reference = Tracer::new(2);
        for both in [&t, &reference] {
            both.busy(10);
            for i in 0..10u64 {
                both.read(0x1000 + i * 8, 8, DataClass::Data);
            }
            both.busy(3);
        }
        // Full blocks drained as recording went: at most one block buffered.
        assert!(t.len() < 4, "buffered events stay under one block");
        assert_eq!(t.finish_sink().unwrap(), 12);
        let streamed = read_trace_blocks(out.0.borrow().as_slice()).unwrap();
        assert_eq!(streamed, reference.take(), "streaming changes no events");
        assert_eq!(streamed.proc_id, 2);
    }

    #[test]
    fn resumed_sink_completes_a_salvaged_recording() {
        use crate::{read_trace_blocks, salvage_scan};
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Clone, Default)]
        struct Shared(Rc<RefCell<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        // 11 refs + 11 busy events = 22: five full 4-event blocks plus a
        // final partial block, so the cut sweep exercises both the
        // full-block skip path and the salvaged-partial-block path.
        let record = |t: &Tracer| {
            for i in 0..11u64 {
                t.read(0x1000 + i * 8, 8, DataClass::Data);
                t.busy(2);
            }
        };
        // The uninterrupted recording, for byte comparison.
        let whole = Shared::default();
        let t = Tracer::with_sink(1, 4, Box::new(whole.clone())).unwrap();
        record(&t);
        let total = t.finish_sink().unwrap();
        let whole = whole.0.borrow().clone();

        // Crash the recording at every possible byte length, salvage, and
        // resume: the result must be byte-identical to the whole stream.
        for cut in 24..whole.len() {
            let torn = &whole[..cut];
            let scan = salvage_scan(torn).unwrap();
            let out = Shared(Rc::new(RefCell::new(
                torn[..scan.valid_len as usize].to_vec(),
            )));
            let t = Tracer::with_sink_resume(1, 4, Box::new(out.clone()), scan.blocks);
            record(&t);
            assert_eq!(t.finish_sink().unwrap(), total, "cut at {cut}");
            assert_eq!(*out.0.borrow(), whole, "cut at {cut}");
        }
        read_trace_blocks(whole.as_slice()).unwrap();
    }

    #[test]
    fn resumed_sink_refuses_an_impossible_prefix() {
        let t = Tracer::with_sink_resume(0, 4, Box::new(Vec::new()), 3);
        t.read(0x100, 8, DataClass::Data);
        let err = t.finish_sink().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("salvaged prefix"), "{err}");
    }

    #[test]
    fn lock_events_flush_pending_busy() {
        let t = Tracer::new(0);
        t.busy(7);
        t.lock_acquire(LockToken::new(0x40, LockClass::BufMgr));
        t.lock_release(LockToken::new(0x40, LockClass::BufMgr));
        let trace = t.take();
        assert_eq!(trace.events.len(), 3);
        assert_eq!(trace.events[0], Event::Busy(7));
    }
}
