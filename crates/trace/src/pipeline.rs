//! Pipeline-parallel trace delivery: producer worker threads pump blocks
//! through bounded channels while the simulator consumes them in strict
//! chunk order.
//!
//! The streaming contract ([`TraceSource`]/[`EventStream`]) bounds *memory*,
//! but a single thread still alternates between producing a block (decoding,
//! checksumming, generating) and simulating it — the two phases never
//! overlap. [`PipelinedTraceSource`] splits them: `open()` spawns up to
//! `gen_jobs` producer workers, each of which reopens the inner source and
//! pumps its share of processor lanes into per-processor bounded channels.
//! The consumer side looks like any other [`EventStream`]; blocks arrive
//! tagged with their chunk index and pass through a [`ChunkSequencer`] that
//! releases them strictly in order, so simulated results are bit-identical
//! to the serial path at any chunk size, channel capacity, or worker count.
//!
//! Three properties carry the design:
//!
//! * **Backpressure** — channels hold at most a few blocks per processor, so
//!   peak memory stays `O(nprocs × capacity × block)` no matter how far the
//!   producer could run ahead.
//! * **No cross-lane blocking** — a worker pumping several lanes never parks
//!   on one lane's full channel while the consumer starves on another; it
//!   round-robins with `try_send`, holding at most one pending block per
//!   lane, and only sleeps when *every* lane is full (the consumer has a
//!   full buffer of work everywhere, so the nap costs nothing).
//! * **Fail loud, never hang** — producer panics and stream errors are
//!   forwarded in-band as [`TraceError::Pipeline`] / original codec errors;
//!   a disconnect without the end-of-stream marker is itself an error, so
//!   the consumer can always classify a dead producer instead of blocking
//!   forever.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, Sender, SyncSender, TryRecvError, TrySendError,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::source::{EventStream, TraceSource};
use crate::{Event, TraceError};

/// Default bounded-channel capacity, in blocks per processor lane. Deep
/// enough to ride out consumer bursts, shallow enough that backpressure
/// keeps peak memory within a few blocks of the serial path.
pub const DEFAULT_CHANNEL_BLOCKS: usize = 4;

/// Default reordering window of the consumer-side [`ChunkSequencer`]: how
/// many out-of-order blocks it will buffer while waiting for the next
/// expected chunk before declaring the stream broken.
pub const DEFAULT_REORDER_WINDOW: usize = 64;

/// How long a producer worker naps when every one of its lanes is full.
const FULL_BACKOFF: Duration = Duration::from_micros(100);

/// Shared pipeline utilization counters, updated by both sides of the
/// channel and readable while a run is in flight.
///
/// "Stall" means time spent *blocked on the channel*: for the producer,
/// napping because every lane it pumps is full (the consumer is the
/// bottleneck); for the consumer, parked in `recv` because the next block
/// has not arrived (the producer is the bottleneck). Comparing the two says
/// which side of the pipeline to widen without reaching for a profiler.
#[derive(Debug, Default)]
pub struct PipelineStats {
    producer_stall_ns: AtomicU64,
    consumer_stall_ns: AtomicU64,
    blocks: AtomicU64,
}

/// A point-in-time copy of [`PipelineStats`], as returned by
/// [`PipelineStats::take`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineSnapshot {
    /// Total nanoseconds producer workers spent napping on full lanes.
    pub producer_stall_ns: u64,
    /// Total nanoseconds consumers spent parked waiting for a block.
    pub consumer_stall_ns: u64,
    /// Blocks successfully handed across the channel.
    pub blocks: u64,
}

impl PipelineStats {
    /// Fresh zeroed counters behind an [`Arc`], ready to share with a
    /// [`PipelinedTraceSource::shared_stats`].
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Nanoseconds producer workers have spent blocked so far.
    pub fn producer_stall_ns(&self) -> u64 {
        self.producer_stall_ns.load(Ordering::Relaxed)
    }

    /// Nanoseconds consumers have spent blocked so far.
    pub fn consumer_stall_ns(&self) -> u64 {
        self.consumer_stall_ns.load(Ordering::Relaxed)
    }

    /// Blocks delivered across the channel so far.
    pub fn blocks(&self) -> u64 {
        self.blocks.load(Ordering::Relaxed)
    }

    /// Reads and zeroes all counters — one experiment's worth of pipeline
    /// accounting when the same stats are shared across a sweep.
    pub fn take(&self) -> PipelineSnapshot {
        PipelineSnapshot {
            producer_stall_ns: self.producer_stall_ns.swap(0, Ordering::Relaxed),
            consumer_stall_ns: self.consumer_stall_ns.swap(0, Ordering::Relaxed),
            blocks: self.blocks.swap(0, Ordering::Relaxed),
        }
    }

    fn add_producer_stall(&self, d: Duration) {
        self.producer_stall_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    fn add_consumer_stall(&self, d: Duration) {
        self.consumer_stall_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    fn add_block(&self) {
        self.blocks.fetch_add(1, Ordering::Relaxed);
    }
}

/// Consumer-side in-order release of chunk-indexed blocks.
///
/// Blocks may arrive tagged with any chunk index; the sequencer buffers a
/// bounded window of early arrivals and releases blocks strictly in index
/// order, so the event stream the simulator sees is identical to the serial
/// one. A chunk index that goes *backwards* (a replay) or a gap that never
/// closes (a drop) is a structural pipeline failure, reported as
/// [`TraceError::Pipeline`] — never silently reordered work.
#[derive(Debug)]
pub struct ChunkSequencer {
    proc_id: usize,
    next: u64,
    window: usize,
    pending: BTreeMap<u64, Vec<Event>>,
}

impl ChunkSequencer {
    /// A sequencer for processor `proc_id` expecting chunks from zero,
    /// buffering at most `window` early blocks (at least one).
    pub fn new(proc_id: usize, window: usize) -> Self {
        ChunkSequencer {
            proc_id,
            next: 0,
            window: window.max(1),
            pending: BTreeMap::new(),
        }
    }

    fn fail(&self, what: String) -> TraceError {
        TraceError::Pipeline {
            proc_id: self.proc_id,
            what,
        }
    }

    /// Accepts one block tagged with its chunk index.
    ///
    /// # Errors
    ///
    /// [`TraceError::Pipeline`] if the index was already released or already
    /// buffered (a replayed chunk), or if the reorder window fills without
    /// the next expected chunk arriving (a dropped chunk).
    pub fn accept(&mut self, chunk: u64, events: Vec<Event>) -> Result<(), TraceError> {
        if chunk < self.next {
            return Err(self.fail(format!(
                "chunk {chunk} replayed: chunks up to {} were already released in order",
                self.next
            )));
        }
        if self.pending.insert(chunk, events).is_some() {
            return Err(self.fail(format!(
                "chunk {chunk} replayed: a block with the same index is already buffered"
            )));
        }
        if !self.pending.contains_key(&self.next) && self.pending.len() >= self.window {
            return Err(self.fail(format!(
                "chunk {} dropped in transit: {} later blocks arrived without it \
                 (reorder window {})",
                self.next,
                self.pending.len(),
                self.window
            )));
        }
        Ok(())
    }

    /// Releases the next in-order block, if it has arrived.
    pub fn pop_ready(&mut self) -> Option<Vec<Event>> {
        let events = self.pending.remove(&self.next)?;
        self.next += 1;
        Some(events)
    }

    /// Number of chunks released in order so far.
    pub fn released(&self) -> u64 {
        self.next
    }

    /// Verifies the stream is complete once the producer announces its
    /// total chunk count.
    ///
    /// # Errors
    ///
    /// [`TraceError::Pipeline`] if a chunk never arrived, if more chunks
    /// were released than the producer claims to have sent, or if blocks
    /// are still buffered past the announced end.
    pub fn finish(&mut self, chunks: u64) -> Result<(), TraceError> {
        if self.next < chunks {
            return Err(self.fail(format!(
                "chunk {} of {chunks} dropped in transit: the stream ended without it",
                self.next
            )));
        }
        if self.next > chunks {
            return Err(self.fail(format!(
                "producer announced {chunks} chunks but {} were delivered",
                self.next
            )));
        }
        if let Some((&k, _)) = self.pending.iter().next() {
            return Err(self.fail(format!(
                "chunk {k} arrived beyond the announced end of {chunks} chunks"
            )));
        }
        Ok(())
    }
}

/// What travels over a processor lane.
enum Msg {
    /// One block of events, tagged with its chunk index.
    Block { chunk: u64, events: Vec<Event> },
    /// End of stream after exactly `chunks` blocks.
    End { chunks: u64 },
    /// The producer failed; the consumer must surface this error.
    Fail(TraceError),
}

/// The producer-side half of one processor lane.
struct Lane {
    proc: usize,
    tx: SyncSender<Msg>,
    spares: Receiver<Vec<Event>>,
}

/// A [`TraceSource`] adapter that produces blocks on background worker
/// threads and delivers them through bounded per-processor channels.
///
/// Every `open()` spawns a fresh set of producer workers (threads exit when
/// their lanes are done or the consumer hangs up), so the source remains
/// reopenable and shareable across simulation points like any other.
/// Consumed through [`crate::materialize`] or `Machine::run_source`, the
/// event sequence is bit-identical to opening `inner` directly.
pub struct PipelinedTraceSource<S> {
    inner: Arc<S>,
    gen_jobs: usize,
    capacity: usize,
    window: usize,
    stats: Arc<PipelineStats>,
}

impl<S: TraceSource + Send + Sync + 'static> PipelinedTraceSource<S> {
    /// Wraps `inner`, producing on up to `gen_jobs` worker threads (at
    /// least one; capped at the processor count on open).
    pub fn new(inner: S, gen_jobs: usize) -> Self {
        PipelinedTraceSource {
            inner: Arc::new(inner),
            gen_jobs: gen_jobs.max(1),
            capacity: DEFAULT_CHANNEL_BLOCKS,
            window: DEFAULT_REORDER_WINDOW,
            stats: PipelineStats::shared(),
        }
    }

    /// Sets the bounded-channel capacity in blocks per processor lane
    /// (at least one).
    pub fn channel_blocks(mut self, blocks: usize) -> Self {
        self.capacity = blocks.max(1);
        self
    }

    /// Shares `stats` so a caller holding the other end can read pipeline
    /// utilization while runs are in flight.
    pub fn shared_stats(mut self, stats: Arc<PipelineStats>) -> Self {
        self.stats = stats;
        self
    }

    /// The utilization counters this source updates.
    pub fn stats(&self) -> Arc<PipelineStats> {
        Arc::clone(&self.stats)
    }
}

impl<S: TraceSource + Send + Sync + 'static> TraceSource for PipelinedTraceSource<S> {
    fn nprocs(&self) -> usize {
        self.inner.nprocs()
    }

    fn open(&self) -> Result<Vec<Box<dyn EventStream + '_>>, TraceError> {
        // Open the inner source once on the calling thread: a failing open
        // surfaces here with its original error kind (exactly as the serial
        // path would report it), and the per-processor ids are known before
        // any worker starts.
        let proc_ids: Vec<usize> = self
            .inner
            .open()?
            .iter()
            .map(|stream| stream.proc_id())
            .collect();
        let nprocs = proc_ids.len();
        if nprocs == 0 {
            return Ok(Vec::new());
        }
        let workers = self.gen_jobs.min(nprocs).max(1);
        let mut assignments: Vec<Vec<Lane>> = (0..workers).map(|_| Vec::new()).collect();
        let mut streams: Vec<Box<dyn EventStream + '_>> = Vec::with_capacity(nprocs);
        for (idx, proc_id) in proc_ids.into_iter().enumerate() {
            let (tx, rx) = sync_channel(self.capacity);
            let (spare_tx, spare_rx) = channel();
            if let Some(worker) = assignments.get_mut(idx % workers) {
                worker.push(Lane {
                    proc: idx,
                    tx,
                    spares: spare_rx,
                });
            }
            streams.push(Box::new(PipelinedStream {
                proc_id,
                rx,
                spares: spare_tx,
                seq: ChunkSequencer::new(idx, self.window),
                end: None,
                done: false,
                stats: Arc::clone(&self.stats),
            }));
        }
        for lanes in assignments {
            let inner = Arc::clone(&self.inner);
            let stats = Arc::clone(&self.stats);
            std::thread::spawn(move || produce(inner, lanes, stats));
        }
        Ok(streams)
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_what(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Producer worker entry point: pump all assigned lanes, converting a panic
/// anywhere in the inner source into an in-band [`TraceError::Pipeline`] on
/// every still-open lane so the consumer fails loudly instead of hanging.
fn produce<S: TraceSource>(inner: Arc<S>, lanes: Vec<Lane>, stats: Arc<PipelineStats>) {
    let outcome = catch_unwind(AssertUnwindSafe(|| pump(&*inner, &lanes, &stats)));
    if let Err(payload) = outcome {
        let what = panic_what(payload.as_ref());
        for lane in &lanes {
            // `send` (not `try_send`) so the failure is not lost behind a
            // full lane; a consumer that already hung up disconnects the
            // channel and the send simply errors out.
            let _ = lane.tx.send(Msg::Fail(TraceError::Pipeline {
                proc_id: lane.proc,
                what: format!("producer worker panicked: {what}"),
            }));
        }
    }
}

/// Per-lane producer state: the stream being pumped plus the one block that
/// may be waiting for channel space.
struct LaneRun<'a> {
    stream: Box<dyn EventStream + 'a>,
    chunk: u64,
    ready: Option<Msg>,
    live: bool,
}

/// Pumps every assigned lane round-robin with `try_send`, napping only when
/// *all* live lanes are blocked on a full channel.
fn pump(inner: &dyn TraceSource, lanes: &[Lane], stats: &PipelineStats) {
    let mut streams: Vec<Option<Box<dyn EventStream + '_>>> = match inner.open() {
        Ok(s) => s.into_iter().map(Some).collect(),
        Err(e) => {
            // The calling thread validated open() once already, so this is
            // a rare race (e.g. a file removed since); wrap it per lane.
            let what = format!("reopening the inner source failed: {e}");
            for lane in lanes {
                let _ = lane.tx.send(Msg::Fail(TraceError::Pipeline {
                    proc_id: lane.proc,
                    what: what.clone(),
                }));
            }
            return;
        }
    };
    let mut runs: Vec<LaneRun<'_>> = Vec::with_capacity(lanes.len());
    for lane in lanes {
        match streams.get_mut(lane.proc).and_then(Option::take) {
            Some(stream) => runs.push(LaneRun {
                stream,
                chunk: 0,
                ready: None,
                live: true,
            }),
            None => {
                let _ = lane.tx.send(Msg::Fail(TraceError::Pipeline {
                    proc_id: lane.proc,
                    what: format!("inner source yielded no stream for processor {}", lane.proc),
                }));
                runs.push(LaneRun {
                    stream: Box::new(Exhausted),
                    chunk: 0,
                    ready: None,
                    live: false,
                });
            }
        }
    }
    drop(streams);
    loop {
        let mut progressed = false;
        let mut any_live = false;
        for (run, lane) in runs.iter_mut().zip(lanes) {
            if !run.live {
                continue;
            }
            any_live = true;
            if run.ready.is_none() {
                let mut buf = lane.spares.try_recv().unwrap_or_default();
                run.ready = Some(match run.stream.next_block(&mut buf) {
                    Ok(0) => Msg::End { chunks: run.chunk },
                    Ok(_) => {
                        let chunk = run.chunk;
                        run.chunk += 1;
                        Msg::Block { chunk, events: buf }
                    }
                    Err(e) => Msg::Fail(e),
                });
            }
            let Some(msg) = run.ready.take() else {
                continue;
            };
            let terminal = !matches!(msg, Msg::Block { .. });
            match lane.tx.try_send(msg) {
                Ok(()) => {
                    progressed = true;
                    if terminal {
                        run.live = false;
                    } else {
                        stats.add_block();
                    }
                }
                Err(TrySendError::Full(msg)) => run.ready = Some(msg),
                Err(TrySendError::Disconnected(_)) => run.live = false,
            }
        }
        if !any_live {
            return;
        }
        if !progressed {
            let napped = Instant::now();
            std::thread::sleep(FULL_BACKOFF);
            stats.add_producer_stall(napped.elapsed());
        }
    }
}

/// A permanently-empty stand-in stream for a lane whose inner stream was
/// missing (the error already went over the channel).
struct Exhausted;

impl EventStream for Exhausted {
    fn proc_id(&self) -> usize {
        usize::MAX
    }

    fn next_block(&mut self, buf: &mut Vec<Event>) -> Result<usize, TraceError> {
        buf.clear();
        Ok(0)
    }
}

/// The consumer-side half of one processor lane.
struct PipelinedStream {
    proc_id: usize,
    rx: Receiver<Msg>,
    spares: Sender<Vec<Event>>,
    seq: ChunkSequencer,
    end: Option<u64>,
    done: bool,
    stats: Arc<PipelineStats>,
}

impl PipelinedStream {
    fn disconnected(&self) -> TraceError {
        TraceError::Pipeline {
            proc_id: self.proc_id,
            what: "producer disconnected before the end-of-stream marker \
                   (worker thread died)"
                .to_string(),
        }
    }
}

impl EventStream for PipelinedStream {
    fn proc_id(&self) -> usize {
        self.proc_id
    }

    fn next_block(&mut self, buf: &mut Vec<Event>) -> Result<usize, TraceError> {
        buf.clear();
        if self.done {
            return Ok(0);
        }
        loop {
            if let Some(mut block) = self.seq.pop_ready() {
                // Swap the caller's buffer with the delivered block and
                // recycle the old allocation back to the producer, so block
                // buffers circulate instead of being reallocated per block.
                std::mem::swap(buf, &mut block);
                block.clear();
                let _ = self.spares.send(block);
                return Ok(buf.len());
            }
            if let Some(chunks) = self.end {
                self.seq.finish(chunks)?;
                self.done = true;
                return Ok(0);
            }
            let msg = match self.rx.try_recv() {
                Ok(msg) => msg,
                Err(TryRecvError::Empty) => {
                    let parked = Instant::now();
                    let recv = self.rx.recv();
                    self.stats.add_consumer_stall(parked.elapsed());
                    match recv {
                        Ok(msg) => msg,
                        Err(_) => return Err(self.disconnected()),
                    }
                }
                Err(TryRecvError::Disconnected) => return Err(self.disconnected()),
            };
            match msg {
                Msg::Block { chunk, events } => self.seq.accept(chunk, events)?,
                Msg::End { chunks } => self.end = Some(chunks),
                Msg::Fail(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{materialize, DataClass, Trace, Tracer};

    fn sample(nprocs: usize, events_per_proc: usize) -> Vec<Trace> {
        (0..nprocs)
            .map(|p| {
                let t = Tracer::new(p);
                for i in 0..events_per_proc as u64 {
                    t.read(
                        0x2_0000_0000 | ((p as u64) << 20) | (i * 8),
                        8,
                        DataClass::Data,
                    );
                    t.busy(3);
                }
                t.take()
            })
            .collect()
    }

    #[test]
    fn pipelined_matches_serial() {
        let traces = sample(4, 1000);
        let serial = materialize(&traces[..]).unwrap();
        for gen_jobs in [1, 2, 3, 8] {
            let piped = PipelinedTraceSource::new(traces.clone(), gen_jobs).channel_blocks(2);
            assert_eq!(materialize(&piped).unwrap(), serial, "gen_jobs={gen_jobs}");
            // Reopenable: a second materialize sees the same events.
            assert_eq!(materialize(&piped).unwrap(), serial);
        }
    }

    #[test]
    fn exhausted_stream_stays_exhausted() {
        let traces = sample(1, 10);
        let piped = PipelinedTraceSource::new(traces, 1);
        let mut streams = piped.open().unwrap();
        let mut buf = Vec::new();
        let mut total = 0;
        loop {
            let n = streams[0].next_block(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            total += n;
        }
        assert_eq!(total, 20);
        assert_eq!(streams[0].next_block(&mut buf).unwrap(), 0);
        assert_eq!(streams[0].next_block(&mut buf).unwrap(), 0);
    }

    #[test]
    fn stats_account_for_delivered_blocks() {
        let traces = sample(2, 100);
        let stats = PipelineStats::shared();
        let piped = PipelinedTraceSource::new(traces, 2).shared_stats(Arc::clone(&stats));
        materialize(&piped).unwrap();
        let snap = stats.take();
        assert!(snap.blocks >= 2, "at least one block per processor");
        assert_eq!(stats.take(), PipelineSnapshot::default(), "take drains");
    }

    /// A source whose streams panic after a few blocks.
    struct PanicSource;

    struct PanicStream {
        left: usize,
    }

    impl EventStream for PanicStream {
        fn proc_id(&self) -> usize {
            0
        }

        fn next_block(&mut self, buf: &mut Vec<Event>) -> Result<usize, TraceError> {
            buf.clear();
            if self.left == 0 {
                panic!("synthetic producer failure");
            }
            self.left -= 1;
            buf.push(Event::Busy(1));
            Ok(1)
        }
    }

    impl TraceSource for PanicSource {
        fn nprocs(&self) -> usize {
            1
        }

        fn open(&self) -> Result<Vec<Box<dyn EventStream + '_>>, TraceError> {
            Ok(vec![Box::new(PanicStream { left: 3 })])
        }
    }

    #[test]
    fn producer_panic_surfaces_as_pipeline_error() {
        let piped = PipelinedTraceSource::new(PanicSource, 2);
        let err = match materialize(&piped) {
            Err(e) => e,
            Ok(_) => panic!("a panicking producer must fail the stream"),
        };
        assert_eq!(err.kind(), "pipeline");
        assert!(
            err.to_string().contains("synthetic producer failure"),
            "{err}"
        );
    }

    #[test]
    fn sequencer_heals_bounded_reorder() {
        let mut seq = ChunkSequencer::new(0, 8);
        seq.accept(1, vec![Event::Busy(1)]).unwrap();
        assert!(seq.pop_ready().is_none(), "chunk 0 still missing");
        seq.accept(0, vec![Event::Busy(0)]).unwrap();
        assert_eq!(seq.pop_ready(), Some(vec![Event::Busy(0)]));
        assert_eq!(seq.pop_ready(), Some(vec![Event::Busy(1)]));
        assert!(seq.pop_ready().is_none());
        seq.finish(2).unwrap();
    }

    #[test]
    fn sequencer_rejects_replayed_chunk() {
        let mut seq = ChunkSequencer::new(3, 8);
        seq.accept(0, vec![Event::Busy(0)]).unwrap();
        assert!(seq.pop_ready().is_some());
        let err = seq.accept(0, vec![Event::Busy(0)]).unwrap_err();
        assert_eq!(err.kind(), "pipeline");
        assert!(err.to_string().contains("replayed"), "{err}");
        assert!(err.to_string().contains("processor 3"), "{err}");
    }

    #[test]
    fn sequencer_rejects_dropped_chunk_at_finish() {
        let mut seq = ChunkSequencer::new(0, 8);
        seq.accept(0, vec![Event::Busy(0)]).unwrap();
        assert!(seq.pop_ready().is_some());
        // Chunk 1 never arrives.
        let err = seq.finish(3).unwrap_err();
        assert_eq!(err.kind(), "pipeline");
        assert!(err.to_string().contains("dropped"), "{err}");
    }

    #[test]
    fn sequencer_window_overflow_is_a_drop() {
        let mut seq = ChunkSequencer::new(0, 2);
        seq.accept(1, vec![]).unwrap();
        let err = seq.accept(2, vec![]).unwrap_err();
        assert_eq!(err.kind(), "pipeline");
        assert!(err.to_string().contains("dropped"), "{err}");
    }
}
