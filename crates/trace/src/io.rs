//! Compact binary serialization of traces.
//!
//! Traces run to millions of events; this fixed-width little-endian format
//! lets a workload be traced once and re-simulated elsewhere (the same
//! workflow as saving an execution-driven simulator's address trace). No
//! external dependencies: the format is nine bytes of header plus 16 bytes
//! per event.

use std::io::{self, Read, Write};

use crate::{DataClass, Event, LockClass, LockToken, MemRef, Trace};

const MAGIC: &[u8; 8] = b"DSSTRC01";

/// Writes `trace` in the binary format.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(trace.proc_id as u64).to_le_bytes())?;
    w.write_all(&(trace.events.len() as u64).to_le_bytes())?;
    for event in &trace.events {
        let (tag, a, b): (u8, u64, u64) = match event {
            Event::Busy(n) => (0, *n as u64, 0),
            Event::Ref(r) => {
                let meta =
                    (r.size as u64) << 8 | (r.write as u64) << 7 | class_code(r.class) as u64;
                (1, r.addr, meta)
            }
            Event::LockAcquire(tok) => (2, tok.addr, lock_code(tok.class) as u64),
            Event::LockRelease(tok) => (3, tok.addr, lock_code(tok.class) as u64),
        };
        w.write_all(&[tag])?;
        w.write_all(&a.to_le_bytes())?;
        w.write_all(&b.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a trace written by [`write_trace`].
///
/// # Errors
///
/// Returns `InvalidData` for a bad magic number or malformed events, and
/// propagates I/O errors from `r`.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Trace> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a DSS trace file",
        ));
    }
    let proc_id = read_u64(&mut r)? as usize;
    let n = read_u64(&mut r)? as usize;
    let mut events = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let a = read_u64(&mut r)?;
        let b = read_u64(&mut r)?;
        let event = match tag[0] {
            0 => Event::Busy(a as u32),
            1 => {
                let class = class_from(b as u8 & 0x7f)?;
                Event::Ref(MemRef {
                    addr: a,
                    size: (b >> 8) as u16,
                    write: b & 0x80 != 0,
                    class,
                })
            }
            2 => Event::LockAcquire(LockToken::new(a, lock_from(b as u8)?)),
            3 => Event::LockRelease(LockToken::new(a, lock_from(b as u8)?)),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown event tag {other}"),
                ))
            }
        };
        events.push(event);
    }
    Ok(Trace { proc_id, events })
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn class_code(c: DataClass) -> u8 {
    DataClass::ALL.iter().position(|x| *x == c).expect("listed") as u8
}

fn class_from(code: u8) -> io::Result<DataClass> {
    DataClass::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("bad class {code}")))
}

fn lock_code(c: LockClass) -> u8 {
    match c {
        LockClass::LockMgr => 0,
        LockClass::BufMgr => 1,
        LockClass::Other => 2,
    }
}

fn lock_from(code: u8) -> io::Result<LockClass> {
    Ok(match code {
        0 => LockClass::LockMgr,
        1 => LockClass::BufMgr,
        2 => LockClass::Other,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad lock class {other}"),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn sample() -> Trace {
        let t = Tracer::new(3);
        t.busy(1234);
        t.read(0x1_0000_0040, 8, DataClass::Data);
        t.write(0x100_0000_0010, 4, DataClass::PrivHeap);
        t.lock_acquire(LockToken::new(0x40, LockClass::LockMgr));
        t.read(0x1_0000_2000, 16, DataClass::Index);
        t.lock_release(LockToken::new(0x40, LockClass::LockMgr));
        t.busy(u32::MAX);
        t.take()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).expect("in-memory write");
        let back = read_trace(buf.as_slice()).expect("read back");
        assert_eq!(back, trace);
        assert_eq!(back.proc_id, 3);
    }

    #[test]
    fn every_class_roundtrips() {
        let t = Tracer::new(0);
        for (i, class) in DataClass::ALL.iter().enumerate() {
            t.read(0x1000 + i as u64 * 8, 8, *class);
        }
        let trace = t.take();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        assert_eq!(read_trace(buf.as_slice()).unwrap(), trace);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"NOTATRCE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn bad_event_tag_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&Trace::new(0), &mut buf).unwrap();
        // Claim one event, then write garbage.
        buf[16..24].copy_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&[9u8]);
        buf.extend_from_slice(&[0u8; 16]);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn format_is_compact() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        assert_eq!(buf.len(), 8 + 16 + trace.events.len() * 17);
    }
}
