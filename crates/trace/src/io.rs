//! Compact binary serialization of traces.
//!
//! Traces run to millions of events; this fixed-width little-endian format
//! lets a workload be traced once and re-simulated elsewhere (the same
//! workflow as saving an execution-driven simulator's address trace). No
//! external dependencies: the format is eight bytes of magic, sixteen bytes
//! of header, 17 bytes per event, and a trailing FNV-1a checksum of
//! everything after the magic — so a single flipped bit anywhere in the file
//! is *detected* instead of silently replayed as a different workload.
//!
//! Failures never panic: malformed or truncated input comes back as a
//! structured [`TraceError`] carrying the byte offset (and, for event-level
//! failures, the event index) where decoding stopped, and the
//! [`read_trace_file`] / [`write_trace_file`] helpers wrap the file path, so
//! a bad trace on disk is diagnosable from the error alone. File writes go
//! through a write-temp-then-rename protocol, so a killed writer never
//! leaves a torn trace at the destination path.

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::{DataClass, Event, LockClass, LockToken, MemRef, Trace};

/// Format magic. `02` added the trailing whole-file checksum.
const MAGIC: &[u8; 8] = b"DSSTRC02";

/// Magic of the chunked block format: a stream header followed by
/// independently checksummed event blocks, so a trace can be produced and
/// consumed incrementally with bounded memory.
const BLOCK_MAGIC: &[u8; 8] = b"DSSTRB01";

/// FNV-1a 64-bit offset basis / prime, the checksum of the trace body.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A failure while decoding (or, for [`TraceError::Io`], transporting) a
/// serialized trace. Every variant pins down *where* in the stream decoding
/// stopped and *what* was wrong, so fault-injection campaigns can assert a
/// corrupted byte is classified, never absorbed.
#[derive(Debug)]
pub enum TraceError {
    /// The stream is not a DSS trace: the leading magic did not match.
    BadMagic {
        /// The eight bytes found where the magic should be.
        found: [u8; 8],
    },
    /// The stream ended before the structure it promised was complete —
    /// an empty file, a header-only file, or a file cut mid-event.
    Truncated {
        /// Byte offset of the record the decoder was reading when the
        /// stream ended.
        offset: u64,
        /// What the decoder was expecting to read there.
        expected: &'static str,
        /// `(index, total)` of the event being decoded, if the cut happened
        /// inside the event section.
        event: Option<(usize, usize)>,
    },
    /// A structurally complete record held an impossible value (unknown
    /// event tag, out-of-range data class or lock class).
    Corrupt {
        /// Byte offset of the record holding the bad value.
        offset: u64,
        /// `(index, total)` of the offending event.
        event: Option<(usize, usize)>,
        /// What was wrong with the record.
        what: String,
    },
    /// Every record decoded, but the trailing checksum does not match the
    /// bytes read — some bit of the file changed since it was written.
    ChecksumMismatch {
        /// The checksum stored in the file.
        stored: u64,
        /// The checksum computed over the bytes actually read.
        computed: u64,
    },
    /// An underlying transport error (not a format violation).
    Io {
        /// Byte offset reached when the error occurred.
        offset: u64,
        /// The I/O error itself.
        source: io::Error,
    },
    /// An error wrapped with the file it concerned.
    InFile {
        /// The file being read.
        path: PathBuf,
        /// The underlying failure.
        source: Box<TraceError>,
    },
    /// The pipelined delivery path itself failed: a producer worker died,
    /// disconnected mid-stream, or violated the in-order chunk contract
    /// (dropped or replayed a block). Distinct from the codec errors above —
    /// the bytes on disk may be fine; the hand-off between threads was not.
    Pipeline {
        /// The simulated processor whose stream the failure concerned.
        proc_id: usize,
        /// What the pipeline did wrong.
        what: String,
    },
}

impl TraceError {
    /// A short classification label (stable across messages), e.g.
    /// `"truncated"` or `"checksum-mismatch"` — what a fault campaign
    /// asserts against.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceError::BadMagic { .. } => "bad-magic",
            TraceError::Truncated { .. } => "truncated",
            TraceError::Corrupt { .. } => "corrupt",
            TraceError::ChecksumMismatch { .. } => "checksum-mismatch",
            TraceError::Io { .. } => "io",
            TraceError::InFile { source, .. } => source.kind(),
            TraceError::Pipeline { .. } => "pipeline",
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic { found } => write!(
                f,
                "not a DSS trace file (bad magic at byte offset 0: {:?})",
                String::from_utf8_lossy(found)
            ),
            TraceError::Truncated {
                offset,
                expected,
                event: Some((i, n)),
            } => write!(
                f,
                "truncated trace: event {i} of {n} at byte offset {offset}: \
                 stream ended while reading {expected}"
            ),
            TraceError::Truncated {
                offset,
                expected,
                event: None,
            } => write!(
                f,
                "truncated trace: stream ended at byte offset {offset} \
                 while reading {expected}"
            ),
            TraceError::Corrupt {
                offset,
                event: Some((i, n)),
                what,
            } => write!(f, "event {i} of {n} at byte offset {offset}: {what}"),
            TraceError::Corrupt {
                offset,
                event: None,
                what,
            } => write!(f, "corrupt record at byte offset {offset}: {what}"),
            TraceError::ChecksumMismatch { stored, computed } => write!(
                f,
                "trace checksum mismatch: file says {stored:#018x}, bytes hash to \
                 {computed:#018x} — the trace was corrupted after it was written"
            ),
            TraceError::Io { offset, source } => {
                write!(f, "I/O error at byte offset {offset}: {source}")
            }
            TraceError::InFile { path, source } => write!(f, "{}: {source}", path.display()),
            TraceError::Pipeline { proc_id, what } => {
                write!(f, "trace pipeline failed for processor {proc_id}: {what}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io { source, .. } => Some(source),
            TraceError::InFile { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<TraceError> for io::Error {
    fn from(e: TraceError) -> io::Error {
        let kind = match &e {
            TraceError::Truncated { .. } => io::ErrorKind::UnexpectedEof,
            TraceError::Io { source, .. } => source.kind(),
            TraceError::InFile { source, .. } => match source.as_ref() {
                TraceError::Truncated { .. } => io::ErrorKind::UnexpectedEof,
                TraceError::Io { source, .. } => source.kind(),
                _ => io::ErrorKind::InvalidData,
            },
            _ => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, e.to_string())
    }
}

/// Writes `trace` in the binary format (magic, header, events, checksum).
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    let mut hash = FNV_OFFSET;
    let mut put = |w: &mut W, bytes: &[u8]| -> io::Result<()> {
        hash = fnv1a(hash, bytes);
        w.write_all(bytes)
    };
    put(&mut w, &(trace.proc_id as u64).to_le_bytes())?;
    put(&mut w, &(trace.events.len() as u64).to_le_bytes())?;
    for event in &trace.events {
        put(&mut w, &encode_event(event))?;
    }
    w.write_all(&hash.to_le_bytes())
}

/// Encodes one event as its 17-byte wire record.
fn encode_event(event: &Event) -> [u8; 17] {
    let (tag, a, b): (u8, u64, u64) = match event {
        Event::Busy(n) => (0, *n as u64, 0),
        Event::Ref(r) => {
            let meta = (r.size as u64) << 8 | (r.write as u64) << 7 | class_code(r.class) as u64;
            (1, r.addr, meta)
        }
        Event::LockAcquire(tok) => (2, tok.addr, lock_code(tok.class) as u64),
        Event::LockRelease(tok) => (3, tok.addr, lock_code(tok.class) as u64),
    };
    let mut record = [0u8; 17];
    record[0] = tag;
    record[1..9].copy_from_slice(&a.to_le_bytes());
    record[9..17].copy_from_slice(&b.to_le_bytes());
    record
}

/// Writes `trace` to the file at `path` atomically: the bytes land in a
/// temporary sibling file which is renamed over `path` only once fully
/// written and flushed, so a crash mid-write never leaves a torn trace.
///
/// # Errors
///
/// As [`write_trace`], with the file path prepended to the error message.
pub fn write_trace_file(trace: &Trace, path: &Path) -> io::Result<()> {
    let run = || -> io::Result<()> {
        let tmp = tmp_sibling(path);
        let result = (|| {
            let mut w = BufWriter::new(File::create(&tmp)?);
            write_trace(trace, &mut w)?;
            w.flush()?;
            w.into_inner().map_err(|e| e.into_error())?.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    };
    run().map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))
}

/// Names a temporary sibling of `path` in the same directory (renames across
/// filesystems are not atomic, so the temp file must live next to its
/// destination). The process id keeps concurrent writers apart.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

/// An incremental writer for the chunked block format ([`BLOCK_MAGIC`]).
///
/// The stream is a header (magic, processor id, header checksum) followed by
/// any number of blocks, each independently checksummed:
///
/// ```text
/// count:u64  chunk:u64  count × 17-byte event records  fnv1a:u64
/// ```
///
/// `chunk` numbers the blocks sequentially from zero, so a reader detects
/// reordered, duplicated, or mis-seeded chunks (e.g. from a buggy parallel
/// producer) as corruption instead of replaying a scrambled workload. A
/// zero-count block terminates the stream; a stream cut before that marker
/// is reported as truncated. Unlike [`write_trace`], nothing about the
/// stream's total length is promised up front, so a producer can emit blocks
/// as it generates them and never hold more than one block in memory.
pub struct BlockWriter<W: Write> {
    w: W,
    next_chunk: u64,
    finished: bool,
}

impl<W: Write> BlockWriter<W> {
    /// Starts a block stream for `proc_id`, writing the stream header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn new(mut w: W, proc_id: usize) -> io::Result<Self> {
        w.write_all(BLOCK_MAGIC)?;
        let id = (proc_id as u64).to_le_bytes();
        w.write_all(&id)?;
        w.write_all(&fnv1a(FNV_OFFSET, &id).to_le_bytes())?;
        Ok(BlockWriter {
            w,
            next_chunk: 0,
            finished: false,
        })
    }

    /// Appends one block of events. Empty blocks are skipped (a zero count is
    /// the end-of-stream marker).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics if called after [`BlockWriter::finish`].
    pub fn write_block(&mut self, events: &[Event]) -> io::Result<()> {
        assert!(!self.finished, "write_block after finish");
        if events.is_empty() {
            return Ok(());
        }
        let mut hash = FNV_OFFSET;
        let mut put = |w: &mut W, bytes: &[u8]| -> io::Result<()> {
            hash = fnv1a(hash, bytes);
            w.write_all(bytes)
        };
        put(&mut self.w, &(events.len() as u64).to_le_bytes())?;
        put(&mut self.w, &self.next_chunk.to_le_bytes())?;
        for event in events {
            put(&mut self.w, &encode_event(event))?;
        }
        self.w.write_all(&hash.to_le_bytes())?;
        self.next_chunk += 1;
        Ok(())
    }

    /// Writes the end-of-stream marker and flushes. Must be called exactly
    /// once; a stream without it reads back as truncated.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(&mut self) -> io::Result<()> {
        assert!(!self.finished, "finish called twice");
        self.finished = true;
        let mut hash = FNV_OFFSET;
        let zero = 0u64.to_le_bytes();
        let chunk = self.next_chunk.to_le_bytes();
        hash = fnv1a(hash, &zero);
        hash = fnv1a(hash, &chunk);
        self.w.write_all(&zero)?;
        self.w.write_all(&chunk)?;
        self.w.write_all(&hash.to_le_bytes())?;
        self.w.flush()
    }

    /// Resumes a block stream whose header and first `next_chunk` blocks are
    /// already durable in `w` — the crash-recovery counterpart of
    /// [`BlockWriter::new`]. No header is written; the caller must have
    /// positioned `w` exactly at the end of a prefix validated by
    /// [`salvage_scan`] (so the next block's chunk index is `next_chunk`).
    pub fn resume(w: W, next_chunk: u64) -> Self {
        BlockWriter {
            w,
            next_chunk,
            finished: false,
        }
    }

    /// Number of blocks written so far.
    pub fn blocks_written(&self) -> u64 {
        self.next_chunk
    }

    /// Consumes the writer, returning the underlying sink (after `finish`).
    pub fn into_inner(self) -> W {
        self.w
    }
}

/// A reader for the chunked block format, yielding one block of events at a
/// time — the [`crate::EventStream`] counterpart of [`BlockWriter`].
#[derive(Debug)]
pub struct BlockReader<R> {
    r: CountingReader<R>,
    proc_id: usize,
    next_chunk: u64,
    done: bool,
}

impl<R: Read> BlockReader<R> {
    /// Opens a block stream, validating the header.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`] for a foreign stream (including the
    /// whole-trace [`write_trace`] format), [`TraceError::Truncated`] /
    /// [`TraceError::Io`] when the header cannot be read, and
    /// [`TraceError::ChecksumMismatch`] when the header checksum fails.
    pub fn new(r: R) -> Result<Self, TraceError> {
        let mut r = CountingReader {
            inner: r,
            offset: 0,
            hash: FNV_OFFSET,
            hashing: false,
        };
        let mut magic = [0u8; 8];
        r.fill(&mut magic, "block stream magic", None)?;
        if &magic != BLOCK_MAGIC {
            return Err(TraceError::BadMagic { found: magic });
        }
        let mut word = [0u8; 8];
        r.hashing = true;
        r.hash = FNV_OFFSET;
        r.fill(&mut word, "block stream header", None)?;
        let proc_id = u64::from_le_bytes(word) as usize;
        r.hashing = false;
        let computed = r.hash;
        r.fill(&mut word, "block stream header checksum", None)?;
        let stored = u64::from_le_bytes(word);
        if stored != computed {
            return Err(TraceError::ChecksumMismatch { stored, computed });
        }
        Ok(BlockReader {
            r,
            proc_id,
            next_chunk: 0,
            done: false,
        })
    }

    /// The processor id from the stream header.
    pub fn proc_id(&self) -> usize {
        self.proc_id
    }

    /// Reads the next block into `buf` (cleared first), returning the number
    /// of events read. Zero means the stream's end marker was reached; later
    /// calls keep returning zero.
    ///
    /// # Errors
    ///
    /// [`TraceError::Truncated`] when the stream ends mid-block or before the
    /// end marker, [`TraceError::Corrupt`] for impossible record values or a
    /// block whose chunk index breaks the expected sequence (a chunk-seed or
    /// chunk-order mismatch from a bad producer), and
    /// [`TraceError::ChecksumMismatch`] when a block's bytes do not hash to
    /// its stored checksum.
    pub fn next_block(&mut self, buf: &mut Vec<Event>) -> Result<usize, TraceError> {
        buf.clear();
        if self.done {
            return Ok(0);
        }
        let r = &mut self.r;
        r.hashing = true;
        r.hash = FNV_OFFSET;
        let mut word = [0u8; 8];
        let header_at = r.fill(&mut word, "block header", None)?;
        let n = u64::from_le_bytes(word) as usize;
        r.fill(&mut word, "block header", None)?;
        let chunk = u64::from_le_bytes(word);
        if chunk != self.next_chunk {
            return Err(TraceError::Corrupt {
                offset: header_at,
                event: None,
                what: format!(
                    "chunk-seed mismatch: block claims chunk {chunk} where chunk {} was \
                     expected — the stream was produced or assembled out of order",
                    self.next_chunk
                ),
            });
        }
        let mut record = [0u8; 17];
        buf.reserve(n.min(1 << 24));
        for i in 0..n {
            let start = r.fill(&mut record, "event record", Some((i, n)))?;
            buf.push(decode_event(&record, start, (i, n))?);
        }
        r.hashing = false;
        let computed = r.hash;
        r.fill(&mut word, "block checksum", None)?;
        let stored = u64::from_le_bytes(word);
        if stored != computed {
            return Err(TraceError::ChecksumMismatch { stored, computed });
        }
        if n == 0 {
            self.done = true;
        } else {
            self.next_chunk += 1;
        }
        Ok(n)
    }
}

/// Writes `trace` as a block stream with at most `block_events` events per
/// block — the streaming counterpart of [`write_trace`].
///
/// # Errors
///
/// Propagates I/O errors from `w`.
///
/// # Panics
///
/// Panics if `block_events` is zero.
pub fn write_trace_blocks<W: Write>(trace: &Trace, w: W, block_events: usize) -> io::Result<()> {
    assert!(block_events > 0, "block_events must be positive");
    let mut bw = BlockWriter::new(w, trace.proc_id)?;
    for chunk in trace.events.chunks(block_events) {
        bw.write_block(chunk)?;
    }
    bw.finish()
}

/// Reads an entire block stream back into a materialized [`Trace`].
///
/// # Errors
///
/// As [`BlockReader::new`] and [`BlockReader::next_block`].
pub fn read_trace_blocks<R: Read>(r: R) -> Result<Trace, TraceError> {
    let mut br = BlockReader::new(r)?;
    let mut events = Vec::new();
    let mut block = Vec::new();
    while br.next_block(&mut block)? > 0 {
        events.extend_from_slice(&block);
    }
    Ok(Trace {
        proc_id: br.proc_id(),
        events,
    })
}

/// What [`salvage_scan`] found in a (possibly torn) block stream: the length
/// of the longest checksum-valid prefix and whether the end marker was seen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SalvageScan {
    /// The processor id from the stream header.
    pub proc_id: usize,
    /// Number of checksum-valid event blocks in the prefix (the chunk index
    /// the next appended block must carry).
    pub blocks: u64,
    /// Number of events in those blocks.
    pub events: u64,
    /// Byte length of the valid prefix: header plus whole valid blocks, and
    /// the end marker when `complete`. Truncating the file to this length
    /// yields a stream a resumed writer can append to.
    pub valid_len: u64,
    /// Whether the end-of-stream marker was reached — i.e. the stream is a
    /// whole trace, not a crashed writer's prefix.
    pub complete: bool,
}

/// Scans a block stream for crash recovery: reads forward block by block and
/// stops at the first damage (truncation, corruption, checksum mismatch)
/// instead of failing, reporting the longest valid prefix. A writer killed
/// mid-stream leaves a file this scan salvages down to the last
/// checksum-valid block; [`BlockWriter::resume`] can then append the rest.
///
/// # Errors
///
/// Header damage is not salvageable — there is nothing valid to keep — so
/// [`TraceError::BadMagic`], a truncated header, or a header checksum
/// mismatch is returned as the error it is. [`TraceError::Io`] transport
/// errors also propagate: a failing disk is not a decidable salvage. Damage
/// *after* the header is never an error; it just ends the valid prefix.
pub fn salvage_scan<R: Read>(r: R) -> Result<SalvageScan, TraceError> {
    let mut br = BlockReader::new(r)?;
    let mut scan = SalvageScan {
        proc_id: br.proc_id(),
        blocks: 0,
        events: 0,
        valid_len: br.r.offset,
        complete: false,
    };
    let mut buf = Vec::new();
    loop {
        match br.next_block(&mut buf) {
            Ok(0) => {
                scan.complete = true;
                scan.valid_len = br.r.offset;
                return Ok(scan);
            }
            Ok(n) => {
                scan.blocks += 1;
                scan.events += n as u64;
                scan.valid_len = br.r.offset;
            }
            Err(e @ TraceError::Io { .. }) => return Err(e),
            Err(_) => return Ok(scan),
        }
    }
}

/// Runs [`salvage_scan`] over the file at `path`.
///
/// # Errors
///
/// As [`salvage_scan`] (plus the file-open error), wrapped in
/// [`TraceError::InFile`] naming the path.
pub fn salvage_scan_file(path: &Path) -> Result<SalvageScan, TraceError> {
    let run = || -> Result<SalvageScan, TraceError> {
        let file = File::open(path).map_err(|source| TraceError::Io { offset: 0, source })?;
        salvage_scan(BufReader::new(file))
    };
    run().map_err(|e| TraceError::InFile {
        path: path.to_path_buf(),
        source: Box::new(e),
    })
}

/// A reader that remembers how many bytes it has yielded and hashes them, so
/// decode errors can report where in the stream they happened and the
/// trailing checksum can be verified.
#[derive(Debug)]
struct CountingReader<R> {
    inner: R,
    offset: u64,
    hash: u64,
    hashing: bool,
}

impl<R: Read> CountingReader<R> {
    /// Reads exactly `buf.len()` bytes, classifying a short read as
    /// [`TraceError::Truncated`] over `expected` at the offset where the
    /// record began.
    fn fill(
        &mut self,
        buf: &mut [u8],
        expected: &'static str,
        event: Option<(usize, usize)>,
    ) -> Result<u64, TraceError> {
        let start = self.offset;
        let mut filled = 0;
        while filled < buf.len() {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) => {
                    return Err(TraceError::Truncated {
                        offset: start,
                        expected,
                        event,
                    })
                }
                Ok(n) => {
                    filled += n;
                    self.offset += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(source) => {
                    return Err(TraceError::Io {
                        offset: self.offset,
                        source,
                    })
                }
            }
        }
        if self.hashing {
            self.hash = fnv1a(self.hash, buf);
        }
        Ok(start)
    }
}

/// Reads a trace written by [`write_trace`].
///
/// # Errors
///
/// Returns a structured [`TraceError`]: [`TraceError::BadMagic`] for a
/// foreign file, [`TraceError::Truncated`] when the stream ends early
/// (including empty and header-only inputs), [`TraceError::Corrupt`] for
/// impossible record values, and [`TraceError::ChecksumMismatch`] when the
/// decoded bytes do not hash to the stored checksum. Every error names the
/// byte offset the decoder had reached, and event-level errors also name the
/// event index.
pub fn read_trace<R: Read>(r: R) -> Result<Trace, TraceError> {
    let mut r = CountingReader {
        inner: r,
        offset: 0,
        hash: FNV_OFFSET,
        hashing: false,
    };
    let mut magic = [0u8; 8];
    r.fill(&mut magic, "trace magic", None)?;
    if &magic != MAGIC {
        return Err(TraceError::BadMagic { found: magic });
    }
    r.hashing = true;
    let mut word = [0u8; 8];
    r.fill(&mut word, "trace header", None)?;
    let proc_id = u64::from_le_bytes(word) as usize;
    r.fill(&mut word, "trace header", None)?;
    let n = u64::from_le_bytes(word) as usize;
    let mut events = Vec::with_capacity(n.min(1 << 24));
    let mut record = [0u8; 17];
    for i in 0..n {
        let start = r.fill(&mut record, "event record", Some((i, n)))?;
        events.push(decode_event(&record, start, (i, n))?);
    }
    r.hashing = false;
    let computed = r.hash;
    r.fill(&mut word, "trace checksum", None)?;
    let stored = u64::from_le_bytes(word);
    if stored != computed {
        return Err(TraceError::ChecksumMismatch { stored, computed });
    }
    Ok(Trace { proc_id, events })
}

/// Reads the trace stored in the file at `path`.
///
/// # Errors
///
/// As [`read_trace`], wrapped in [`TraceError::InFile`] naming the path.
pub fn read_trace_file(path: &Path) -> Result<Trace, TraceError> {
    let run = || -> Result<Trace, TraceError> {
        let file = File::open(path).map_err(|source| TraceError::Io { offset: 0, source })?;
        read_trace(BufReader::new(file))
    };
    run().map_err(|e| TraceError::InFile {
        path: path.to_path_buf(),
        source: Box::new(e),
    })
}

/// Decodes one 17-byte event record beginning at byte `offset`.
fn decode_event(
    record: &[u8; 17],
    offset: u64,
    event: (usize, usize),
) -> Result<Event, TraceError> {
    let corrupt = |what: String| TraceError::Corrupt {
        offset,
        event: Some(event),
        what,
    };
    let a = u64::from_le_bytes([
        record[1], record[2], record[3], record[4], record[5], record[6], record[7], record[8],
    ]);
    let b = u64::from_le_bytes([
        record[9], record[10], record[11], record[12], record[13], record[14], record[15],
        record[16],
    ]);
    Ok(match record[0] {
        0 => Event::Busy(a as u32),
        1 => {
            let class = class_from(b as u8 & 0x7f).map_err(corrupt)?;
            Event::Ref(MemRef {
                addr: a,
                size: (b >> 8) as u16,
                write: b & 0x80 != 0,
                class,
            })
        }
        2 => Event::LockAcquire(LockToken::new(a, lock_from(b as u8).map_err(corrupt)?)),
        3 => Event::LockRelease(LockToken::new(a, lock_from(b as u8).map_err(corrupt)?)),
        other => return Err(corrupt(format!("unknown event tag {other}"))),
    })
}

/// Wire code of a class: its position in [`DataClass::ALL`], spelled as an
/// exhaustive match so the compiler — not a runtime `expect` — guarantees
/// every class encodes.
fn class_code(c: DataClass) -> u8 {
    match c {
        DataClass::PrivHeap => 0,
        DataClass::Data => 1,
        DataClass::Index => 2,
        DataClass::BufDesc => 3,
        DataClass::BufLookup => 4,
        DataClass::LockHash => 5,
        DataClass::XidHash => 6,
        DataClass::LockMgrLock => 7,
        DataClass::BufMgrLock => 8,
        DataClass::SharedMisc => 9,
    }
}

fn class_from(code: u8) -> Result<DataClass, String> {
    DataClass::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| format!("bad class {code}"))
}

fn lock_code(c: LockClass) -> u8 {
    match c {
        LockClass::LockMgr => 0,
        LockClass::BufMgr => 1,
        LockClass::Other => 2,
    }
}

fn lock_from(code: u8) -> Result<LockClass, String> {
    Ok(match code {
        0 => LockClass::LockMgr,
        1 => LockClass::BufMgr,
        2 => LockClass::Other,
        other => return Err(format!("bad lock class {other}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn sample() -> Trace {
        let t = Tracer::new(3);
        t.busy(1234);
        t.read(0x1_0000_0040, 8, DataClass::Data);
        t.write(0x100_0000_0010, 4, DataClass::PrivHeap);
        t.lock_acquire(LockToken::new(0x40, LockClass::LockMgr));
        t.read(0x1_0000_2000, 16, DataClass::Index);
        t.lock_release(LockToken::new(0x40, LockClass::LockMgr));
        t.busy(u32::MAX);
        t.take()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).expect("in-memory write");
        let back = read_trace(buf.as_slice()).expect("read back");
        assert_eq!(back, trace);
        assert_eq!(back.proc_id, 3);
    }

    #[test]
    fn every_class_roundtrips() {
        let t = Tracer::new(0);
        for (i, class) in DataClass::ALL.iter().enumerate() {
            t.read(0x1000 + i as u64 * 8, 8, *class);
        }
        let trace = t.take();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        assert_eq!(read_trace(buf.as_slice()).unwrap(), trace);
    }

    #[test]
    fn class_codes_match_declaration_order() {
        for (i, class) in DataClass::ALL.iter().enumerate() {
            assert_eq!(class_code(*class) as usize, i, "{class:?}");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"NOTATRCE"[..]).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic { .. }), "{err}");
        assert_eq!(err.kind(), "bad-magic");
        // An old-format (pre-checksum) trace is also refused up front.
        let err = read_trace(&b"DSSTRC01"[..]).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic { .. }), "{err}");
    }

    #[test]
    fn empty_input_reports_truncation_at_offset_zero() {
        let err = read_trace(&b""[..]).unwrap_err();
        match err {
            TraceError::Truncated { offset, event, .. } => {
                assert_eq!(offset, 0);
                assert_eq!(event, None);
            }
            other => panic!("expected Truncated, got {other}"),
        }
    }

    #[test]
    fn header_only_input_reports_truncation() {
        // Magic plus a partial header: the classic "file created, write
        // interrupted" shape.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&3u64.to_le_bytes()[..4]);
        let err = read_trace(buf.as_slice()).unwrap_err();
        match err {
            TraceError::Truncated {
                offset,
                expected,
                event,
            } => {
                assert_eq!(offset, 8);
                assert_eq!(expected, "trace header");
                assert_eq!(event, None);
            }
            other => panic!("expected Truncated, got {other}"),
        }
    }

    #[test]
    fn truncated_input_reports_event_and_offset() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        // Cut inside the final event record (past it sit 8 checksum bytes).
        buf.truncate(buf.len() - 8 - 3);
        let err = read_trace(buf.as_slice()).unwrap_err();
        let last = trace.events.len() - 1;
        let start = (24 + 17 * last) as u64;
        match err {
            TraceError::Truncated { offset, event, .. } => {
                assert_eq!(offset, start);
                assert_eq!(event, Some((last, trace.events.len())));
            }
            other => panic!("expected Truncated, got {other}"),
        }
    }

    #[test]
    fn missing_checksum_is_truncation() {
        let mut buf = Vec::new();
        write_trace(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 8);
        let err = read_trace(buf.as_slice()).unwrap_err();
        match err {
            TraceError::Truncated { expected, .. } => assert_eq!(expected, "trace checksum"),
            other => panic!("expected Truncated, got {other}"),
        }
    }

    #[test]
    fn any_flipped_payload_bit_is_detected() {
        let trace = sample();
        let mut clean = Vec::new();
        write_trace(&trace, &mut clean).unwrap();
        // Flip one bit at every byte position after the magic: each flip must
        // surface as *some* classified error — never a silently different
        // trace.
        for pos in 8..clean.len() {
            let mut buf = clean.clone();
            buf[pos] ^= 1 << (pos % 8);
            match read_trace(buf.as_slice()) {
                Err(_) => {}
                Ok(t) => panic!(
                    "flip at byte {pos} silently decoded {} events",
                    t.events.len()
                ),
            }
        }
    }

    #[test]
    fn bad_event_tag_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&sample(), &mut buf).unwrap();
        // Corrupt the first event's tag byte (offset 24).
        buf[24] = 9;
        let err = read_trace(buf.as_slice()).unwrap_err();
        // The tag error is reported before the checksum is reached.
        match &err {
            TraceError::Corrupt { what, event, .. } => {
                assert!(what.contains("unknown event tag 9"), "{err}");
                assert_eq!(*event, Some((0, sample().events.len())));
            }
            other => panic!("expected Corrupt, got {other}"),
        }
    }

    #[test]
    fn truncated_header_is_located() {
        let err = read_trace(&MAGIC[..]).unwrap_err();
        assert!(
            err.to_string().contains("byte offset 8"),
            "offset named: {err}"
        );
        assert_eq!(err.kind(), "truncated");
    }

    #[test]
    fn file_roundtrip_and_error_name_the_path() {
        let dir = std::env::temp_dir().join("dss-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.trace");
        let trace = sample();
        write_trace_file(&trace, &path).unwrap();
        assert_eq!(read_trace_file(&path).unwrap(), trace);
        // The atomic-write protocol leaves no temp droppings behind.
        let siblings = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(siblings, 1, "only the destination file remains");

        std::fs::write(&path, b"NOTATRCE").unwrap();
        let err = read_trace_file(&path).unwrap_err();
        assert!(
            err.to_string().contains("q.trace"),
            "path appears in: {err}"
        );
        assert_eq!(err.kind(), "bad-magic", "wrapping preserves the kind");
        let missing = dir.join("does-not-exist.trace");
        let err = read_trace_file(&missing).unwrap_err();
        assert!(err.to_string().contains("does-not-exist.trace"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_errors_convert_to_io_errors() {
        let err = read_trace(&b""[..]).unwrap_err();
        let io_err: io::Error = err.into();
        assert_eq!(io_err.kind(), io::ErrorKind::UnexpectedEof);
        let err = read_trace(&b"NOTATRCE"[..]).unwrap_err();
        let io_err: io::Error = err.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn format_is_compact() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        assert_eq!(buf.len(), 8 + 16 + trace.events.len() * 17 + 8);
    }

    #[test]
    fn block_roundtrip_at_any_block_size() {
        let trace = sample();
        for block_events in 1..=trace.events.len() + 1 {
            let mut buf = Vec::new();
            write_trace_blocks(&trace, &mut buf, block_events).unwrap();
            let back = read_trace_blocks(buf.as_slice())
                .unwrap_or_else(|e| panic!("block_events={block_events}: {e}"));
            assert_eq!(back, trace, "block_events={block_events}");
        }
    }

    #[test]
    fn block_reader_yields_written_block_boundaries() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace_blocks(&trace, &mut buf, 3).unwrap();
        let mut br = BlockReader::new(buf.as_slice()).unwrap();
        assert_eq!(br.proc_id(), trace.proc_id);
        let mut block = Vec::new();
        let mut sizes = Vec::new();
        loop {
            let n = br.next_block(&mut block).unwrap();
            if n == 0 {
                break;
            }
            sizes.push(n);
        }
        assert_eq!(sizes, vec![3, 3, 2], "8 events in blocks of 3");
        // Exhausted streams keep reporting zero.
        assert_eq!(br.next_block(&mut block).unwrap(), 0);
    }

    #[test]
    fn block_stream_without_end_marker_is_truncated() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace_blocks(&trace, &mut buf, 4).unwrap();
        buf.truncate(buf.len() - 24); // drop the end marker
        let err = read_trace_blocks(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), "truncated", "{err}");
    }

    #[test]
    fn block_cut_mid_event_is_truncated_with_event_context() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace_blocks(&trace, &mut buf, 4).unwrap();
        // Cut inside the second block's first event record.
        let second_block_events = 24 + (16 + 4 * 17 + 8) + 16;
        buf.truncate(second_block_events + 9);
        let err = read_trace_blocks(buf.as_slice()).unwrap_err();
        match err {
            TraceError::Truncated { event, .. } => assert_eq!(event, Some((0, 4))),
            other => panic!("expected Truncated, got {other}"),
        }
    }

    #[test]
    fn reordered_blocks_are_a_chunk_mismatch() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace_blocks(&trace, &mut buf, 2).unwrap();
        // Swap the first two (equal-sized) blocks: each is internally
        // consistent, so only the chunk sequence can reveal the damage.
        let block = 16 + 2 * 17 + 8;
        let (start, mid) = (24, 24 + block);
        for i in 0..block {
            buf.swap(start + i, mid + i);
        }
        let err = read_trace_blocks(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), "corrupt", "{err}");
        assert!(err.to_string().contains("chunk-seed mismatch"), "{err}");
    }

    #[test]
    fn any_flipped_block_stream_bit_is_detected() {
        let trace = sample();
        let mut clean = Vec::new();
        write_trace_blocks(&trace, &mut clean, 3).unwrap();
        for pos in 0..clean.len() {
            let mut buf = clean.clone();
            buf[pos] ^= 1 << (pos % 8);
            assert!(
                read_trace_blocks(buf.as_slice()).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn whole_trace_magic_is_rejected_by_block_reader() {
        let mut buf = Vec::new();
        write_trace(&sample(), &mut buf).unwrap();
        let err = BlockReader::new(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), "bad-magic");
    }

    #[test]
    fn salvage_scan_reports_complete_streams() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace_blocks(&trace, &mut buf, 3).unwrap();
        let scan = salvage_scan(buf.as_slice()).unwrap();
        assert_eq!(scan.proc_id, trace.proc_id);
        assert_eq!(scan.blocks, 3, "8 events in blocks of 3");
        assert_eq!(scan.events, trace.events.len() as u64);
        assert_eq!(scan.valid_len, buf.len() as u64);
        assert!(scan.complete);
    }

    #[test]
    fn salvage_scan_stops_at_the_last_valid_block() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace_blocks(&trace, &mut buf, 3).unwrap();
        let block = |n: usize| 16 + n * 17 + 8;
        // Cut inside the second block: only the first survives.
        let first_end = 24 + block(3);
        let mut torn = buf.clone();
        torn.truncate(first_end + 20);
        let scan = salvage_scan(torn.as_slice()).unwrap();
        assert_eq!(
            (scan.blocks, scan.events, scan.valid_len, scan.complete),
            (1, 3, first_end as u64, false)
        );
        // A flipped bit in the second block ends the prefix at the same place.
        let mut flipped = buf.clone();
        flipped[first_end + 20] ^= 0x40;
        let scan = salvage_scan(flipped.as_slice()).unwrap();
        assert_eq!((scan.blocks, scan.valid_len), (1, first_end as u64));
        // A stream cut right before the end marker keeps every block but is
        // not complete.
        let mut unfinished = buf.clone();
        unfinished.truncate(buf.len() - 24);
        let scan = salvage_scan(unfinished.as_slice()).unwrap();
        assert_eq!((scan.blocks, scan.complete), (3, false));
        assert_eq!(scan.valid_len, (buf.len() - 24) as u64);
    }

    #[test]
    fn salvage_scan_rejects_damaged_headers() {
        // Nothing before a valid header is salvageable.
        assert_eq!(salvage_scan(&b""[..]).unwrap_err().kind(), "truncated");
        assert_eq!(
            salvage_scan(&b"NOTATRCE"[..]).unwrap_err().kind(),
            "bad-magic"
        );
        let mut buf = Vec::new();
        write_trace_blocks(&sample(), &mut buf, 3).unwrap();
        buf.truncate(20); // mid-header
        assert_eq!(
            salvage_scan(buf.as_slice()).unwrap_err().kind(),
            "truncated"
        );
    }

    #[test]
    fn resumed_writer_completes_a_salvaged_prefix() {
        let trace = sample();
        let mut whole = Vec::new();
        write_trace_blocks(&trace, &mut whole, 3).unwrap();
        // Crash after two blocks: keep the valid prefix, then append the
        // remaining blocks through a resumed writer.
        let mut torn = whole.clone();
        torn.truncate(24 + 2 * (16 + 3 * 17 + 8) + 5);
        let scan = salvage_scan(torn.as_slice()).unwrap();
        assert_eq!(scan.blocks, 2);
        let mut buf = torn[..scan.valid_len as usize].to_vec();
        let mut bw = BlockWriter::resume(&mut buf, scan.blocks);
        bw.write_block(&trace.events[scan.events as usize..])
            .unwrap();
        bw.finish().unwrap();
        assert_eq!(buf, whole, "salvage + resume reproduces the whole stream");
        assert_eq!(read_trace_blocks(buf.as_slice()).unwrap(), trace);
    }
}
