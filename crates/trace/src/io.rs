//! Compact binary serialization of traces.
//!
//! Traces run to millions of events; this fixed-width little-endian format
//! lets a workload be traced once and re-simulated elsewhere (the same
//! workflow as saving an execution-driven simulator's address trace). No
//! external dependencies: the format is nine bytes of header plus 17 bytes
//! per event.
//!
//! Failures never panic: malformed or truncated input comes back as an
//! [`io::Error`] carrying the byte offset and event index where decoding
//! stopped, and the [`read_trace_file`] / [`write_trace_file`] helpers
//! prepend the file path, so a bad trace on disk is diagnosable from the
//! error message alone.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{DataClass, Event, LockClass, LockToken, MemRef, Trace};

const MAGIC: &[u8; 8] = b"DSSTRC01";

/// Writes `trace` in the binary format.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(trace.proc_id as u64).to_le_bytes())?;
    w.write_all(&(trace.events.len() as u64).to_le_bytes())?;
    for event in &trace.events {
        let (tag, a, b): (u8, u64, u64) = match event {
            Event::Busy(n) => (0, *n as u64, 0),
            Event::Ref(r) => {
                let meta =
                    (r.size as u64) << 8 | (r.write as u64) << 7 | class_code(r.class) as u64;
                (1, r.addr, meta)
            }
            Event::LockAcquire(tok) => (2, tok.addr, lock_code(tok.class) as u64),
            Event::LockRelease(tok) => (3, tok.addr, lock_code(tok.class) as u64),
        };
        w.write_all(&[tag])?;
        w.write_all(&a.to_le_bytes())?;
        w.write_all(&b.to_le_bytes())?;
    }
    Ok(())
}

/// Writes `trace` to the file at `path`, creating or truncating it.
///
/// # Errors
///
/// As [`write_trace`], with the file path prepended to the error message.
pub fn write_trace_file(trace: &Trace, path: &Path) -> io::Result<()> {
    let run = || -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        write_trace(trace, &mut w)?;
        w.flush()
    };
    run().map_err(|e| at_path(e, path))
}

/// A reader that remembers how many bytes it has yielded, so decode errors
/// can report where in the stream they happened.
struct CountingReader<R> {
    inner: R,
    offset: u64,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.offset += n as u64;
        Ok(n)
    }
}

/// Reads a trace written by [`write_trace`].
///
/// # Errors
///
/// Returns `InvalidData` for a bad magic number or malformed events, and
/// propagates I/O errors from `r`. Every error names the byte offset the
/// decoder had reached, and event-level errors also name the event index.
pub fn read_trace<R: Read>(r: R) -> io::Result<Trace> {
    let mut r = CountingReader {
        inner: r,
        offset: 0,
    };
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|e| at_offset(e, "trace header", 0))?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a DSS trace file (bad magic at byte offset 0)",
        ));
    }
    let header = |e| at_offset(e, "trace header", 8);
    let proc_id = read_u64(&mut r).map_err(header)? as usize;
    let n = read_u64(&mut r).map_err(header)? as usize;
    let mut events = Vec::with_capacity(n.min(1 << 24));
    for i in 0..n {
        let start = r.offset;
        let event = read_event(&mut r).map_err(|e| {
            let what = format!("event {i} of {n}");
            at_offset(e, &what, start)
        })?;
        events.push(event);
    }
    Ok(Trace { proc_id, events })
}

/// Reads the trace stored in the file at `path`.
///
/// # Errors
///
/// As [`read_trace`], with the file path prepended to the error message.
pub fn read_trace_file(path: &Path) -> io::Result<Trace> {
    let run = || read_trace(BufReader::new(File::open(path)?));
    run().map_err(|e| at_path(e, path))
}

/// Decodes one 17-byte event record.
fn read_event<R: Read>(r: &mut R) -> io::Result<Event> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let a = read_u64(r)?;
    let b = read_u64(r)?;
    Ok(match tag[0] {
        0 => Event::Busy(a as u32),
        1 => {
            let class = class_from(b as u8 & 0x7f)?;
            Event::Ref(MemRef {
                addr: a,
                size: (b >> 8) as u16,
                write: b & 0x80 != 0,
                class,
            })
        }
        2 => Event::LockAcquire(LockToken::new(a, lock_from(b as u8)?)),
        3 => Event::LockRelease(LockToken::new(a, lock_from(b as u8)?)),
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown event tag {other}"),
            ))
        }
    })
}

/// Wraps `e` with what was being decoded and where the record began.
fn at_offset(e: io::Error, what: &str, start: u64) -> io::Error {
    io::Error::new(e.kind(), format!("{what} at byte offset {start}: {e}"))
}

/// Wraps `e` with the file it concerned.
fn at_path(e: io::Error, path: &Path) -> io::Error {
    io::Error::new(e.kind(), format!("{}: {e}", path.display()))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Wire code of a class: its position in [`DataClass::ALL`], spelled as an
/// exhaustive match so the compiler — not a runtime `expect` — guarantees
/// every class encodes.
fn class_code(c: DataClass) -> u8 {
    match c {
        DataClass::PrivHeap => 0,
        DataClass::Data => 1,
        DataClass::Index => 2,
        DataClass::BufDesc => 3,
        DataClass::BufLookup => 4,
        DataClass::LockHash => 5,
        DataClass::XidHash => 6,
        DataClass::LockMgrLock => 7,
        DataClass::BufMgrLock => 8,
        DataClass::SharedMisc => 9,
    }
}

fn class_from(code: u8) -> io::Result<DataClass> {
    DataClass::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("bad class {code}")))
}

fn lock_code(c: LockClass) -> u8 {
    match c {
        LockClass::LockMgr => 0,
        LockClass::BufMgr => 1,
        LockClass::Other => 2,
    }
}

fn lock_from(code: u8) -> io::Result<LockClass> {
    Ok(match code {
        0 => LockClass::LockMgr,
        1 => LockClass::BufMgr,
        2 => LockClass::Other,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad lock class {other}"),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn sample() -> Trace {
        let t = Tracer::new(3);
        t.busy(1234);
        t.read(0x1_0000_0040, 8, DataClass::Data);
        t.write(0x100_0000_0010, 4, DataClass::PrivHeap);
        t.lock_acquire(LockToken::new(0x40, LockClass::LockMgr));
        t.read(0x1_0000_2000, 16, DataClass::Index);
        t.lock_release(LockToken::new(0x40, LockClass::LockMgr));
        t.busy(u32::MAX);
        t.take()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).expect("in-memory write");
        let back = read_trace(buf.as_slice()).expect("read back");
        assert_eq!(back, trace);
        assert_eq!(back.proc_id, 3);
    }

    #[test]
    fn every_class_roundtrips() {
        let t = Tracer::new(0);
        for (i, class) in DataClass::ALL.iter().enumerate() {
            t.read(0x1000 + i as u64 * 8, 8, *class);
        }
        let trace = t.take();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        assert_eq!(read_trace(buf.as_slice()).unwrap(), trace);
    }

    #[test]
    fn class_codes_match_declaration_order() {
        for (i, class) in DataClass::ALL.iter().enumerate() {
            assert_eq!(class_code(*class) as usize, i, "{class:?}");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"NOTATRCE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_input_reports_event_and_offset() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_trace(buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        let last = trace.events.len() - 1;
        let start = 24 + 17 * last;
        assert!(
            msg.contains(&format!("event {last} of {}", trace.events.len())),
            "message names the event: {msg}"
        );
        assert!(
            msg.contains(&format!("byte offset {start}")),
            "message names the record's offset: {msg}"
        );
    }

    #[test]
    fn bad_event_tag_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&Trace::new(0), &mut buf).unwrap();
        // Claim one event, then write garbage.
        buf[16..24].copy_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&[9u8]);
        buf.extend_from_slice(&[0u8; 16]);
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("unknown event tag 9"));
    }

    #[test]
    fn truncated_header_is_located() {
        let err = read_trace(&MAGIC[..]).unwrap_err();
        assert!(err.to_string().contains("trace header at byte offset 8"));
    }

    #[test]
    fn file_roundtrip_and_error_name_the_path() {
        let dir = std::env::temp_dir().join("dss-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.trace");
        let trace = sample();
        write_trace_file(&trace, &path).unwrap();
        assert_eq!(read_trace_file(&path).unwrap(), trace);

        std::fs::write(&path, b"NOTATRCE").unwrap();
        let err = read_trace_file(&path).unwrap_err();
        assert!(
            err.to_string().contains("q.trace"),
            "path appears in: {err}"
        );
        let missing = dir.join("does-not-exist.trace");
        let err = read_trace_file(&missing).unwrap_err();
        assert!(err.to_string().contains("does-not-exist.trace"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn format_is_compact() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        assert_eq!(buf.len(), 8 + 16 + trace.events.len() * 17);
    }
}
