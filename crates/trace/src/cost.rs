//! Busy-cycle cost model.
//!
//! The paper traces a real Postgres95 binary, so the cycles *between* memory
//! references come from actual instructions. Our engine instead charges a
//! fixed number of busy cycles per logical operation. The constants below are
//! calibrated so that the baseline execution-time breakdown matches the
//! paper's Figure 6(a): Busy ≈ 50–70 % and Mem ≈ 30–35 % of execution time
//! for queries Q3, Q6 and Q12.

/// Per-operation busy-cycle charges used by the engine while generating
/// traces.
///
/// All costs are in cycles of the simulated 500 MHz processor. The defaults
/// are the calibrated values used for every experiment; tests may construct
/// cheaper models.
///
/// # Example
///
/// ```
/// use dss_trace::CostModel;
///
/// let cost = CostModel::default();
/// assert!(cost.tuple_overhead > 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Executor node dispatch per tuple produced or consumed (Volcano
    /// `next()` call overhead: function calls, slot bookkeeping).
    pub tuple_overhead: u32,
    /// Evaluating one predicate clause against an attribute (decode, branch).
    pub predicate_eval: u32,
    /// One arithmetic operation in an aggregate or projection.
    pub arithmetic: u32,
    /// One comparison inside a sort.
    pub sort_compare: u32,
    /// Hashing one key (hash join build/probe, hash table step).
    pub hash_step: u32,
    /// Binary-search step inside a b-tree node.
    pub btree_step: u32,
    /// Fixed overhead of a buffer-manager call (pin or unpin), excluding the
    /// memory references it issues.
    pub buffer_call: u32,
    /// Fixed overhead of a lock-manager call, excluding memory references.
    pub lock_call: u32,
    /// Per-byte cost of formatting/copying a tuple beyond the word copies the
    /// tracer already emits (length checks, null bitmap handling).
    pub copy_per_word: u32,
    /// Per-page overhead of a sequential scan advancing to the next page.
    pub page_advance: u32,
    /// Overhead of starting (or restarting) a scan: executor node
    /// initialization, scan-key setup, relation open.
    pub scan_start: u32,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated against Figure 6(a); see crate docs. The intent is that
        // a tuple examined by a scan costs a few tens of busy cycles against
        // a handful of memory references.
        CostModel {
            tuple_overhead: 600,
            predicate_eval: 80,
            arithmetic: 25,
            sort_compare: 60,
            hash_step: 60,
            btree_step: 200,
            buffer_call: 60,
            lock_call: 300,
            copy_per_word: 8,
            page_advance: 120,
            scan_start: 8000,
        }
    }
}

impl CostModel {
    /// A model that charges zero busy cycles everywhere, useful for tests
    /// that want traces containing only memory references.
    pub fn free() -> Self {
        CostModel {
            tuple_overhead: 0,
            predicate_eval: 0,
            arithmetic: 0,
            sort_compare: 0,
            hash_step: 0,
            btree_step: 0,
            buffer_call: 0,
            lock_call: 0,
            copy_per_word: 0,
            page_advance: 0,
            scan_start: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_charges_are_positive() {
        let c = CostModel::default();
        for v in [
            c.tuple_overhead,
            c.predicate_eval,
            c.arithmetic,
            c.sort_compare,
            c.hash_step,
            c.btree_step,
            c.buffer_call,
            c.lock_call,
            c.copy_per_word,
            c.page_advance,
            c.scan_start,
        ] {
            assert!(v > 0);
        }
    }

    #[test]
    fn free_charges_nothing() {
        let c = CostModel::free();
        assert_eq!(c.tuple_overhead, 0);
        assert_eq!(c.lock_call, 0);
    }
}
