//! Bit-identity of the pipelined trace path: for arbitrary processor
//! counts, event counts, producer block sizes, channel capacities, and
//! worker counts, `PipelinedTraceSource` delivers exactly the event
//! sequence of the serial source — plus negative coverage that a producer
//! failure surfaces as a classified `pipeline` error instead of a hang.

use dss_trace::{
    materialize, DataClass, Event, EventStream, LockClass, LockToken, PipelineStats,
    PipelinedTraceSource, Trace, TraceError, TraceSource, Tracer,
};
use proptest::prelude::*;
use std::sync::Arc;

/// A deterministic trace mixing every event shape, sized per processor.
fn sample(nprocs: usize, events_per_proc: usize) -> Vec<Trace> {
    (0..nprocs)
        .map(|p| {
            let t = Tracer::new(p);
            for i in 0..events_per_proc as u64 {
                let addr = 0x3_0000_0000 | ((p as u64) << 24) | (i * 8);
                match i % 5 {
                    0 => t.busy(1 + (i % 7) as u32),
                    1 => t.read(addr, 8, DataClass::Data),
                    2 => t.write(addr, 8, DataClass::PrivHeap),
                    3 => {
                        let tok = LockToken::new(0x100 + (i % 3) * 8, LockClass::Other);
                        t.lock_acquire(tok);
                        t.lock_release(tok);
                    }
                    _ => t.read(addr, 4, DataClass::Index),
                }
            }
            t.take()
        })
        .collect()
}

/// Re-blocks a trace set at an arbitrary block size, so the pipeline's
/// chunk boundaries can land anywhere.
struct Chopped {
    traces: Vec<Trace>,
    block: usize,
}

struct ChoppedStream<'a> {
    trace: &'a Trace,
    pos: usize,
    block: usize,
}

impl EventStream for ChoppedStream<'_> {
    fn proc_id(&self) -> usize {
        self.trace.proc_id
    }

    fn next_block(&mut self, buf: &mut Vec<Event>) -> Result<usize, TraceError> {
        buf.clear();
        let n = (self.trace.events.len() - self.pos).min(self.block);
        buf.extend_from_slice(&self.trace.events[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl TraceSource for Chopped {
    fn nprocs(&self) -> usize {
        self.traces.len()
    }

    fn open(&self) -> Result<Vec<Box<dyn EventStream + '_>>, TraceError> {
        Ok(self
            .traces
            .iter()
            .map(|trace| {
                Box::new(ChoppedStream {
                    trace,
                    pos: 0,
                    block: self.block,
                }) as Box<dyn EventStream>
            })
            .collect())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant: pipelined delivery is bit-identical to the
    /// serial stream for any (nprocs, events, block, capacity, gen_jobs).
    #[test]
    fn pipelined_is_bit_identical_to_serial(
        nprocs in 1usize..5,
        events in 0usize..400,
        block in 1usize..97,
        capacity in 1usize..5,
        gen_jobs in 1usize..7,
    ) {
        let traces = sample(nprocs, events);
        let serial = materialize(&traces[..]).unwrap();
        let chopped = Chopped { traces, block };
        prop_assert_eq!(&materialize(&chopped).unwrap(), &serial, "chopping is inert");
        let piped = PipelinedTraceSource::new(chopped, gen_jobs).channel_blocks(capacity);
        prop_assert_eq!(&materialize(&piped).unwrap(), &serial, "pipelined differs");
    }
}

/// A source whose stream panics mid-flight on one processor.
struct PanicMidway {
    nprocs: usize,
    panic_proc: usize,
}

struct PanicMidwayStream {
    proc: usize,
    panics: bool,
    left: usize,
}

impl EventStream for PanicMidwayStream {
    fn proc_id(&self) -> usize {
        self.proc
    }

    fn next_block(&mut self, buf: &mut Vec<Event>) -> Result<usize, TraceError> {
        buf.clear();
        if self.left == 0 {
            if self.panics {
                panic!("injected producer fault on processor {}", self.proc);
            }
            return Ok(0);
        }
        self.left -= 1;
        buf.push(Event::Busy(2));
        Ok(1)
    }
}

impl TraceSource for PanicMidway {
    fn nprocs(&self) -> usize {
        self.nprocs
    }

    fn open(&self) -> Result<Vec<Box<dyn EventStream + '_>>, TraceError> {
        Ok((0..self.nprocs)
            .map(|proc| {
                Box::new(PanicMidwayStream {
                    proc,
                    panics: proc == self.panic_proc,
                    left: 4,
                }) as Box<dyn EventStream>
            })
            .collect())
    }
}

/// A panic on any producer worker becomes a classified in-band error on
/// that processor's stream — the consumer never hangs on a dead producer.
#[test]
fn producer_panic_is_classified_not_a_hang() {
    for gen_jobs in [1, 2, 4] {
        let piped = PipelinedTraceSource::new(
            PanicMidway {
                nprocs: 3,
                panic_proc: 1,
            },
            gen_jobs,
        );
        let err = match materialize(&piped) {
            Err(e) => e,
            Ok(_) => panic!("stream with a panicking producer must fail"),
        };
        assert_eq!(err.kind(), "pipeline", "gen_jobs={gen_jobs}: {err}");
        assert!(err.to_string().contains("injected producer fault"), "{err}");
    }
}

/// Stall counters move: with a slow consumer the producer stalls (bounded
/// channels exert backpressure), and blocks are counted.
#[test]
fn backpressure_is_observable_in_stats() {
    let traces = sample(1, 3000);
    let total_events = traces[0].events.len();
    let stats = PipelineStats::shared();
    let piped = PipelinedTraceSource::new(Chopped { traces, block: 16 }, 1)
        .channel_blocks(1)
        .shared_stats(Arc::clone(&stats));
    let mut streams = piped.open().unwrap();
    let mut buf = Vec::new();
    // Drain slowly so the producer hits the full channel at least once.
    loop {
        let n = streams[0].next_block(&mut buf).unwrap();
        if n == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(300));
    }
    drop(streams);
    let snap = stats.take();
    assert_eq!(snap.blocks as usize, total_events.div_ceil(16));
    assert!(
        snap.producer_stall_ns > 0,
        "a slow consumer must register producer stall ({snap:?})"
    );
}
