//! Property tests for crash salvage of chunked block streams: a block file
//! truncated at *any* byte offset is either salvaged down to the last
//! checksum-valid block ([`dss_trace::salvage_scan`]) or rejected with a
//! structured [`TraceError`] — never a panic, a hang, or a silent short
//! read. The salvaged prefix must also be completable: appending the
//! regenerated remainder through [`BlockWriter::resume`] reproduces the
//! uninterrupted stream byte for byte.

use proptest::prelude::*;

use dss_trace::{
    read_trace_blocks, salvage_scan, write_trace_blocks, BlockWriter, DataClass, LockClass,
    LockToken, Tracer,
};

/// Byte length of the stream header (magic, proc id, header checksum).
const HEADER: usize = 24;

/// Builds a deterministic trace of `nevents` events mixing every kind.
fn sample_trace(nevents: usize) -> dss_trace::Trace {
    let t = Tracer::new(2);
    for i in 0..nevents {
        match i % 4 {
            0 => t.read(0x1000 + i as u64 * 8, 8, DataClass::Data),
            1 => t.write(0x9000 + i as u64 * 8, 8, DataClass::PrivHeap),
            2 => t.lock_acquire(LockToken::new(0x40, LockClass::LockMgr)),
            _ => t.lock_release(LockToken::new(0x40, LockClass::LockMgr)),
        }
    }
    t.take()
}

/// Byte offset after each block, with the cumulative event count — the only
/// prefixes a salvage may stop at.
fn block_boundaries(nevents: usize, block_events: usize) -> Vec<(usize, u64)> {
    let mut out = Vec::new();
    let mut offset = HEADER;
    let mut events = 0u64;
    let mut remaining = nevents;
    while remaining > 0 {
        let n = remaining.min(block_events);
        offset += 16 + n * 17 + 8;
        events += n as u64;
        out.push((offset, events));
        remaining -= n;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any cut either salvages to the last checksummed block boundary or is
    /// rejected as truncated — and the codec's strict reader agrees that the
    /// cut stream is not a whole trace.
    #[test]
    fn any_truncation_salvages_or_rejects(
        block_events in 1usize..=8,
        nevents in 0usize..=40,
        cut_seed in any::<usize>(),
    ) {
        let trace = sample_trace(nevents);
        let mut whole = Vec::new();
        write_trace_blocks(&trace, &mut whole, block_events).expect("in-memory write");
        let cut = cut_seed % (whole.len() + 1);
        let torn = &whole[..cut];

        // The strict reader never silently short-reads a cut stream.
        match read_trace_blocks(torn) {
            Ok(back) => prop_assert_eq!((cut, back), (whole.len(), trace.clone())),
            Err(e) => prop_assert_eq!(e.kind(), "truncated", "cut at {}", cut),
        }

        let boundaries = block_boundaries(nevents, block_events);
        if cut < HEADER {
            // Nothing valid to keep: header damage is rejected, not salvaged.
            let err = salvage_scan(torn).expect_err("headerless prefix");
            prop_assert_eq!(err.kind(), "truncated", "cut at {}", cut);
            return Ok(());
        }
        let scan = salvage_scan(torn).expect("salvage never fails past the header");
        let (want_len, want_events) = boundaries
            .iter()
            .rev()
            .find(|(off, _)| *off <= cut)
            .copied()
            .unwrap_or((HEADER, 0));
        let want_blocks = boundaries.iter().filter(|(off, _)| *off <= cut).count() as u64;
        prop_assert_eq!(scan.proc_id, 2);
        prop_assert_eq!(scan.complete, cut == whole.len());
        if scan.complete {
            prop_assert_eq!(scan.valid_len as usize, whole.len());
        } else {
            prop_assert_eq!(scan.valid_len as usize, want_len);
        }
        prop_assert_eq!((scan.blocks, scan.events), (want_blocks, want_events));

        // The salvaged prefix is completable: appending the regenerated
        // remainder reproduces the uninterrupted stream byte for byte.
        if !scan.complete {
            let mut resumed = torn[..scan.valid_len as usize].to_vec();
            let mut bw = BlockWriter::resume(&mut resumed, scan.blocks);
            for chunk in trace.events[scan.events as usize..].chunks(block_events) {
                bw.write_block(chunk).expect("append");
            }
            bw.finish().expect("finish");
            prop_assert_eq!(&resumed, &whole, "cut at {}", cut);
        }
    }
}
