//! Negative tests for cut-short traces, at both trust boundaries: the codec
//! must classify empty/header-only/mid-event files as
//! [`TraceError::Truncated`] with the offset where the bytes ran out, and
//! the lock-discipline checker must flag the in-memory shape a truncated
//! trace would have (a lock acquired, the trace ending before its release).

use dss_trace::{
    check_lock_discipline, read_trace, read_trace_file, write_trace, DataClass, LockClass,
    LockDisciplineError, LockToken, TraceError, Tracer,
};

/// Encodes a trace whose one critical section sits mid-stream.
fn locked_trace_bytes() -> Vec<u8> {
    let t = Tracer::new(0);
    t.read(0x1000, 8, DataClass::Data);
    t.lock_acquire(LockToken::new(0x40, LockClass::LockMgr));
    t.write(0x2000, 8, DataClass::LockHash);
    t.lock_release(LockToken::new(0x40, LockClass::LockMgr));
    t.busy(7);
    let mut bytes = Vec::new();
    write_trace(&t.take(), &mut bytes).expect("in-memory write cannot fail");
    bytes
}

#[test]
fn empty_stream_is_truncated_at_offset_zero() {
    match read_trace(&[][..]) {
        Err(TraceError::Truncated {
            offset,
            expected,
            event,
        }) => {
            assert_eq!(offset, 0);
            assert_eq!(expected, "trace magic");
            assert_eq!(event, None);
        }
        other => panic!("empty stream: expected Truncated, got {other:?}"),
    }
}

#[test]
fn magic_only_stream_is_truncated_at_the_header() {
    match read_trace(&b"DSSTRC02"[..]) {
        Err(TraceError::Truncated {
            offset, expected, ..
        }) => {
            assert_eq!(offset, 8);
            assert_eq!(expected, "trace header");
        }
        other => panic!("magic-only stream: expected Truncated, got {other:?}"),
    }
}

#[test]
fn header_only_stream_is_truncated_before_the_first_event() {
    // Magic + proc id + a promised event count, then nothing.
    let mut bytes = Vec::from(*b"DSSTRC02");
    bytes.extend_from_slice(&1u64.to_le_bytes());
    bytes.extend_from_slice(&5u64.to_le_bytes());
    match read_trace(&bytes[..]) {
        Err(TraceError::Truncated {
            offset,
            expected,
            event,
        }) => {
            assert_eq!(offset, 24);
            assert_eq!(expected, "event record");
            assert_eq!(event, Some((0, 5)));
        }
        other => panic!("header-only stream: expected Truncated, got {other:?}"),
    }
}

#[test]
fn empty_and_header_only_files_are_classified() {
    let dir = std::env::temp_dir().join(format!("dss-trunc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for (name, contents) in [
        ("empty.trc", &[][..]),
        ("header-only.trc", &locked_trace_bytes()[..24]),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, contents).expect("write fixture");
        let err = read_trace_file(&path).expect_err("cut file must not decode");
        assert_eq!(err.kind(), "truncated", "{name}: {err}");
        // The InFile wrapper names the file so an operator can find it.
        assert!(err.to_string().contains(name), "{name}: {err}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn file_cut_inside_the_critical_section_is_truncated() {
    let bytes = locked_trace_bytes();
    // Cut mid-stream: past the acquire (event 1) but before the release
    // (event 3). Events are 17 bytes starting at offset 24.
    let cut = 24 + 2 * 17 + 9;
    let err = read_trace(&bytes[..cut]).expect_err("cut trace must not decode");
    assert_eq!(err.kind(), "truncated", "{err}");
}

#[test]
fn trace_ending_with_a_held_lock_is_flagged() {
    // The in-memory shape a truncated trace would decode to, had the cut
    // landed on an event boundary of a (checksum-less) stream: the acquire
    // is present, the release never arrives.
    let full = {
        let t = Tracer::new(0);
        t.read(0x1000, 8, DataClass::Data);
        t.lock_acquire(LockToken::new(0x40, LockClass::LockMgr));
        t.write(0x2000, 8, DataClass::LockHash);
        t.lock_release(LockToken::new(0x40, LockClass::LockMgr));
        t.busy(7);
        t.take()
    };
    check_lock_discipline(&full).expect("the full trace is disciplined");

    let mut cut = full;
    cut.events.truncate(3); // read, acquire, write — release dropped
    match check_lock_discipline(&cut) {
        Err(LockDisciplineError::HeldAtEnd { index, addr, .. }) => {
            assert_eq!(index, 1, "the unmatched acquire");
            assert_eq!(addr, 0x40);
        }
        other => panic!("held-at-end not flagged: {other:?}"),
    }
}
