//! Fuzz-style robustness tests for the trace codec: arbitrary byte soup,
//! single-byte corruptions, and truncations of a valid trace must all come
//! back as structured [`TraceError`]s — never a panic, and never garbage
//! silently accepted as a healthy trace.

use proptest::collection;
use proptest::prelude::*;
use proptest::TestCaseError;

use dss_trace::{read_trace, write_trace, DataClass, LockClass, LockToken, Tracer};

/// Encodes a small valid trace with every event kind represented.
fn valid_trace_bytes() -> Vec<u8> {
    let t = Tracer::new(1);
    t.read(0x1000, 8, DataClass::Data);
    t.lock_acquire(LockToken::new(0x40, LockClass::LockMgr));
    t.write(0x1040, 8, DataClass::Index);
    t.lock_release(LockToken::new(0x40, LockClass::LockMgr));
    t.busy(123);
    let mut bytes = Vec::new();
    write_trace(&t.take(), &mut bytes).expect("in-memory write cannot fail");
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes never panic the decoder, and anything it accepts must
    /// at least have carried the format magic.
    #[test]
    fn byte_soup_never_panics(bytes in collection::vec(any::<u8>(), 0..512)) {
        match read_trace(&bytes[..]) {
            Ok(_) => prop_assert!(bytes.len() >= 8 && &bytes[..8] == b"DSSTRC02"),
            Err(e) => prop_assert!(!e.kind().is_empty()),
        }
    }

    /// Flipping any single byte of a valid trace is always detected: the
    /// magic check, the per-event validation, or the trailing checksum must
    /// catch it — a one-byte corruption can never round-trip as healthy.
    #[test]
    fn single_byte_flip_is_always_detected(pos in 0usize..1000, flip in 1u8..=255) {
        let mut bytes = valid_trace_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        let err = match read_trace(&bytes[..]) {
            Ok(_) => return Err(TestCaseError::fail(format!(
                "flip of byte {pos} by {flip:#04x} was silently absorbed"
            ))),
            Err(e) => e,
        };
        prop_assert!(
            matches!(err.kind(), "bad-magic" | "truncated" | "corrupt" | "checksum-mismatch"),
            "unexpected classification {} for flip at byte {}", err.kind(), pos
        );
    }

    /// Every proper prefix of a valid trace is rejected (the trailing
    /// checksum means even an event-aligned cut cannot look complete).
    #[test]
    fn every_truncation_is_rejected(cut in 0usize..1000) {
        let bytes = valid_trace_bytes();
        let cut = cut % bytes.len();
        prop_assert!(
            read_trace(&bytes[..cut]).is_err(),
            "prefix of {cut}/{} bytes decoded as a complete trace", bytes.len()
        );
    }
}

/// The unmutated fixture itself must decode — otherwise the proptests above
/// would be vacuously rejecting everything.
#[test]
fn the_fixture_is_actually_valid() {
    let bytes = valid_trace_bytes();
    let trace = read_trace(&bytes[..]).expect("fixture decodes");
    assert_eq!(trace.len(), 5);
}
