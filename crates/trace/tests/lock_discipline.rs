//! Property tests: traces built through [`Tracer`] from arbitrary well-formed
//! critical-section programs satisfy the lock stack discipline that the
//! happens-before race detector in `dss-check` assumes, and any single
//! unbalancing mutation of such a trace is caught by
//! [`check_lock_discipline`].

use dss_trace::{check_lock_discipline, DataClass, Event, LockClass, LockToken, Tracer};
use proptest::prelude::*;

/// One step of a generated program. `Open`/`Close` drive a lock stack: an
/// `Open` acquires a fresh lock for the current nesting depth, a `Close`
/// releases the innermost one (and is a no-op at depth zero), so every
/// rendered trace is well-formed by construction.
#[derive(Clone, Copy, Debug)]
enum Cmd {
    Busy(u32),
    Read(u32),
    Write(u32),
    Open,
    Close,
}

fn cmd_strategy() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        2 => (1u32..1000).prop_map(Cmd::Busy),
        3 => (0u32..64).prop_map(Cmd::Read),
        3 => (0u32..64).prop_map(Cmd::Write),
        2 => Just(Cmd::Open),
        2 => Just(Cmd::Close),
    ]
}

/// Lock word for nesting depth `d`: depths get distinct addresses, so nested
/// sections never re-acquire a held lock.
fn lock_at(depth: usize) -> LockToken {
    LockToken::new(0x1_0000_0000 + depth as u64 * 0x40, LockClass::Other)
}

/// Renders a command list into a trace, closing every still-open section at
/// the end.
fn render(cmds: &[Cmd]) -> dss_trace::Trace {
    let t = Tracer::new(0);
    let mut depth = 0usize;
    for cmd in cmds {
        match *cmd {
            Cmd::Busy(n) => t.busy(n),
            Cmd::Read(slot) => t.read(0x2_0000_0000 + slot as u64 * 8, 8, DataClass::Data),
            Cmd::Write(slot) => t.write(0x2_0000_0000 + slot as u64 * 8, 8, DataClass::LockHash),
            Cmd::Open => {
                t.lock_acquire(lock_at(depth));
                depth += 1;
            }
            Cmd::Close => {
                if depth > 0 {
                    depth -= 1;
                    t.lock_release(lock_at(depth));
                }
            }
        }
    }
    while depth > 0 {
        depth -= 1;
        t.lock_release(lock_at(depth));
    }
    t.take()
}

/// Indices of the trace's events matched by `want`.
fn positions(trace: &dss_trace::Trace, want: fn(&Event) -> bool) -> Vec<usize> {
    trace
        .events
        .iter()
        .enumerate()
        .filter(|(_, e)| want(e))
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Well-formed programs — arbitrary nesting, interleaved references —
    /// always pass the discipline check.
    #[test]
    fn generated_traces_are_balanced_and_nested(
        cmds in proptest::collection::vec(cmd_strategy(), 0..120)
    ) {
        let trace = render(&cmds);
        prop_assert_eq!(check_lock_discipline(&trace), Ok(()));
    }

    /// Deleting any one release unbalances the trace and is caught.
    #[test]
    fn dropping_a_release_is_caught(
        cmds in proptest::collection::vec(cmd_strategy(), 0..120),
        pick in any::<usize>(),
    ) {
        let mut trace = render(&cmds);
        let releases = positions(&trace, |e| matches!(e, Event::LockRelease(_)));
        if !releases.is_empty() {
            trace.events.remove(releases[pick % releases.len()]);
            prop_assert!(check_lock_discipline(&trace).is_err());
        }
    }

    /// Duplicating any one acquire re-acquires a held lock and is caught.
    #[test]
    fn duplicating_an_acquire_is_caught(
        cmds in proptest::collection::vec(cmd_strategy(), 0..120),
        pick in any::<usize>(),
    ) {
        let mut trace = render(&cmds);
        let acquires = positions(&trace, |e| matches!(e, Event::LockAcquire(_)));
        if !acquires.is_empty() {
            let i = acquires[pick % acquires.len()];
            let dup = trace.events[i];
            trace.events.insert(i + 1, dup);
            prop_assert!(check_lock_discipline(&trace).is_err());
        }
    }

    /// Releasing a lock the trace never acquired is caught.
    #[test]
    fn stray_release_is_caught(
        cmds in proptest::collection::vec(cmd_strategy(), 0..120)
    ) {
        let mut trace = render(&cmds);
        trace
            .events
            .push(Event::LockRelease(LockToken::new(0xdead_0000, LockClass::Other)));
        prop_assert!(check_lock_discipline(&trace).is_err());
    }
}
