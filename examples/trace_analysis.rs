//! Using the trace-analysis API directly: quantify a query's locality the
//! way the paper's Section 3 does by reading address traces.
//!
//! ```text
//! cargo run --release --example trace_analysis
//! ```

use dss_workbench::query::{Database, DbConfig, Session};
use dss_workbench::tpcd::params;
use dss_workbench::trace::{analyze, read_trace, write_trace, DataClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::build(&DbConfig {
        scale: 0.004,
        nbuffers: 2048,
        ..DbConfig::default()
    });

    // Trace one Q6 instance.
    let mut session = Session::new(0);
    let sql = dss_workbench::query::sql_for(6, &params(6, 0));
    db.run(&sql, &mut session)?;
    let trace = session.tracer.take();

    // Traces serialize compactly for offline analysis.
    let mut bytes = Vec::new();
    write_trace(&trace, &mut bytes)?;
    println!(
        "trace: {} events, {:.1} MB serialized",
        trace.len(),
        bytes.len() as f64 / 1e6
    );
    let trace = read_trace(bytes.as_slice())?;

    // Locality at both of the paper's line granularities.
    for line in [32u64, 64] {
        let a = analyze(&trace, line);
        let data = a.class(DataClass::Data);
        let priv_heap = a.class(DataClass::PrivHeap);
        println!("\nat {line}-byte lines:");
        println!(
            "  Data: {} refs over {} lines, {:.0}% sequential, {:.0}% cold, \
             {:.0}% reused immediately",
            data.refs,
            data.footprint_lines,
            100.0 * data.sequentiality(),
            100.0 * data.reuse.cold_fraction(),
            100.0 * data.reuse.reused_within(0),
        );
        println!(
            "  Priv: {} refs over {} lines ({:.0}% reused within 256 lines — the \
             slot reuse the paper describes)",
            priv_heap.refs,
            priv_heap.footprint_lines,
            100.0 * priv_heap.reuse.reused_within(256),
        );
    }
    Ok(())
}
