//! Streaming traces: record a query's references straight to disk as block
//! files and replay them through the simulator without ever holding a full
//! trace in memory — the bounded-memory pipeline DESIGN.md §6 describes.
//!
//! ```text
//! cargo run --release --example streaming_traces
//! ```

use std::fs::File;
use std::io::BufWriter;

use dss_workbench::memsim::{Machine, MachineConfig};
use dss_workbench::query::{sql_for, Database, DbConfig, Session};
use dss_workbench::tpcd::params;
use dss_workbench::trace::{materialize, FileTraceSource, Tracer};

const NPROCS: usize = 2;

/// Small blocks so even this toy run spans several; the repro harness uses
/// `dss_workbench::trace::DEFAULT_BLOCK_EVENTS` (64 Ki events).
const BLOCK_EVENTS: usize = 4096;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::build(&DbConfig {
        scale: 0.002,
        nbuffers: 2048,
        ..DbConfig::default()
    });

    // 1. Generate. Each processor runs Q6 through a sinked tracer: events
    //    drain to a block file as they are recorded, so the tracer holds at
    //    most one block (BLOCK_EVENTS events) however long the query runs.
    let dir = std::env::temp_dir().join(format!("dss-streaming-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let mut paths = Vec::new();
    for p in 0..NPROCS {
        let path = FileTraceSource::proc_path(&dir, "q6", p);
        let sink = Box::new(BufWriter::new(File::create(&path)?));
        let mut session = Session::new(p);
        session.tracer = Tracer::with_sink(p, BLOCK_EVENTS, sink)?;
        db.run(&sql_for(6, &params(6, p as u64)), &mut session)?;
        let events = session.tracer.finish_sink()?;
        let bytes = std::fs::metadata(&path)?.len();
        println!(
            "proc {p}: {events} events streamed to disk ({:.1} MB, {} blocks)",
            bytes as f64 / 1e6,
            events as usize / BLOCK_EVENTS + 1,
        );
        paths.push(path);
    }

    // 2. Simulate. The machine pulls blocks from the files on demand; peak
    //    memory is one block buffer per processor, independent of trace
    //    length or database scale.
    let src = FileTraceSource::new(paths);
    let streamed = Machine::new(MachineConfig::baseline()).run_source(&src)?;
    println!(
        "\nstreamed replay: {} cycles, L1 read miss rate {:.1}%, L2 global {:.2}%",
        streamed.exec_cycles(),
        100.0 * streamed.l1.read_miss_rate(),
        100.0 * streamed.l2_global_read_miss_rate(),
    );

    // 3. Determinism. Materializing the same files and replaying in memory
    //    gives field-for-field identical statistics: block size and trace
    //    mode never leak into results.
    let traces = materialize(&src)?;
    let materialized = Machine::new(MachineConfig::baseline()).run(&traces);
    assert_eq!(streamed, materialized);
    println!("materialized replay matches bit for bit");

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
