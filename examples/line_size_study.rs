//! Spatial locality study (the paper's Figures 8 and 9): sweep the cache
//! line size and watch database-data misses collapse while private-data
//! misses grow.
//!
//! ```text
//! cargo run --release --example line_size_study
//! ```

use dss_workbench::core::{report, Workbench};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building the paper-scale database...");
    let mut wb = Workbench::paper();

    // Q12 combines a sequential scan, a sort, and a merge join — the richest
    // mix for a locality study.
    let query = 12;
    let points = wb.line_size_sweep(query);

    println!("\n{}", report::render_fig8(query, &points));
    println!("{}", report::render_fig9(query, &points));

    // Summarize the trade-off the paper calls out.
    let at = |line: u64| {
        points
            .iter()
            .find(|p| p.l2_line == line)
            .ok_or(format!("line size {line} missing from the sweep"))
    };
    let d16 = at(16)?
        .stats
        .l2
        .read_misses
        .by_group(dss_workbench::trace::DataGroup::Data);
    let d256 = at(256)?
        .stats
        .l2
        .read_misses
        .by_group(dss_workbench::trace::DataGroup::Data);
    let p16 = at(16)?
        .stats
        .l1
        .read_misses
        .by_group(dss_workbench::trace::DataGroup::Priv);
    let p256 = at(256)?
        .stats
        .l1
        .read_misses
        .by_group(dss_workbench::trace::DataGroup::Priv);
    println!(
        "going from 16-byte to 256-byte lines: database-data L2 misses fall {:.1}x\n\
         while private-data L1 misses rise {:.1}x — hence the paper's conclusion\n\
         that relatively long (64-byte) lines serve DSS queries well.",
        d16 as f64 / d256.max(1) as f64,
        p256 as f64 / p16.max(1) as f64,
    );
    Ok(())
}
