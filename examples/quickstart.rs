//! Quickstart: build a memory-resident TPC-D database, run a query, inspect
//! its plan and memory trace, and simulate it on the paper's baseline
//! multiprocessor.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dss_workbench::memsim::{Machine, MachineConfig};
use dss_workbench::query::{Database, DbConfig, Session};
use dss_workbench::trace::TraceStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a small database (the paper's setup uses scale 0.01; this
    //    example uses 1/500 so it runs in a blink).
    let config = DbConfig {
        scale: 0.002,
        nbuffers: 2048,
        ..DbConfig::default()
    };
    let mut db = Database::build(&config);
    println!(
        "database built: {} heap pages across {} tables\n",
        db.catalog.total_heap_pages(),
        db.catalog.iter().count()
    );

    // 2. Plan a query and show the left-deep tree.
    let sql = "select o_orderpriority, count(*) as n \
               from orders \
               where o_orderdate >= date '1994-01-01' and o_orderdate < date '1995-01-01' \
               group by o_orderpriority \
               order by o_orderpriority";
    let plan = db.plan_sql(sql)?;
    println!("plan:\n{}", plan.explain());

    // 3. Execute it in a traced session (one session = one simulated CPU).
    let mut session = Session::new(0);
    let out = db.run(sql, &mut session)?;
    println!("results:");
    for row in &out.rows {
        println!("  {} orders at priority {}", row[1], row[0]);
    }

    // 4. The session recorded every classified memory reference.
    let trace = session.tracer.take();
    let stats = TraceStats::from_trace(&trace);
    println!(
        "\ntrace: {} events, {} refs ({} private, {} shared)",
        trace.len(),
        stats.total_refs(),
        stats.private_refs(),
        stats.shared_refs()
    );

    // 5. Feed the trace to the CC-NUMA memory-hierarchy simulator.
    let sim = Machine::new(MachineConfig::baseline()).run(&[trace]);
    let t = sim.time_breakdown();
    println!(
        "simulated on the paper's baseline: {} cycles (busy {:.0}%, mem {:.0}%, msync {:.0}%)",
        sim.exec_cycles(),
        100.0 * t.busy,
        100.0 * t.mem,
        100.0 * t.msync
    );
    println!(
        "L1 read miss rate {:.1}%, L2 global {:.2}%",
        100.0 * sim.l1.read_miss_rate(),
        100.0 * sim.l2_global_read_miss_rate()
    );
    Ok(())
}
