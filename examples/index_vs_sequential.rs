//! The paper's central dichotomy: *Index* queries (Q3) miss on indices and
//! lock metadata; *Sequential* queries (Q6) miss on the scanned records.
//!
//! This example traces both queries on four simulated processors at the
//! paper's scale and prints where each one's memory stall time goes.
//!
//! ```text
//! cargo run --release --example index_vs_sequential
//! ```

use dss_workbench::core::{query_label, Workbench};
use dss_workbench::memsim::{Machine, MachineConfig};
use dss_workbench::trace::{DataClass, DataGroup};

fn main() {
    println!("building the paper-scale database (~20 MB, memory resident)...");
    let mut wb = Workbench::paper();

    for query in [3u8, 6] {
        let kind = if query == 3 { "Index" } else { "Sequential" };
        println!("\n=== {} — a {kind} query ===", query_label(query));

        let traces = wb.traces(query, 0);
        let stats = Machine::new(MachineConfig::baseline()).run(&traces);

        let t = stats.time_breakdown();
        println!(
            "execution: busy {:.0}% / mem {:.0}% / metalock-spin {:.0}%",
            100.0 * t.busy,
            100.0 * t.mem,
            100.0 * t.msync
        );

        let total_stall = stats.total(|p| p.mem_stall).max(1) as f64;
        println!("memory stall by data structure:");
        for group in DataGroup::ALL {
            let frac = stats.total(|p| p.stall_of_group(group)) as f64 / total_stall;
            println!(
                "  {:9} {:5.1}%  |{}",
                group.label(),
                100.0 * frac,
                "#".repeat((frac * 40.0) as usize)
            );
        }

        // The paper's signature structures for Index queries.
        let l2 = &stats.l2.read_misses;
        println!(
            "L2 read misses: data={} index={} LockSLock={} buffer-metadata={}",
            l2.by_class(DataClass::Data),
            l2.by_class(DataClass::Index),
            l2.by_class(DataClass::LockMgrLock),
            l2.by_class(DataClass::BufDesc)
                + l2.by_class(DataClass::BufLookup)
                + l2.by_class(DataClass::BufMgrLock),
        );
    }

    println!(
        "\nAs in the paper: the Index query's shared-data misses concentrate on\n\
         indices and lock-related metadata, while the Sequential query's are\n\
         almost entirely cold misses on the scanned table."
    );
}
