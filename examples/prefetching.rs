//! The paper's Section 6 optimization: sequential hardware prefetching of
//! database data, four primary-cache lines deep.
//!
//! ```text
//! cargo run --release --example prefetching
//! ```

use dss_workbench::core::{query_label, Workbench, STUDIED_QUERIES};
use dss_workbench::memsim::{Machine, MachineConfig};

fn main() {
    println!("building the paper-scale database...");
    let mut wb = Workbench::paper();

    println!(
        "\n{:5} {:>14} {:>14} {:>8} {:>12}",
        "query", "base cycles", "prefetched", "delta", "pf issued"
    );
    for q in STUDIED_QUERIES {
        let traces = wb.traces(q, 0);
        let base = Machine::new(MachineConfig::baseline()).run(&traces);
        let opt = Machine::new(MachineConfig::baseline().with_data_prefetch(4)).run(&traces);
        println!(
            "{:5} {:>14} {:>14} {:>+7.1}% {:>12}",
            query_label(q),
            base.exec_cycles(),
            opt.exec_cycles(),
            100.0 * (opt.exec_cycles() as f64 / base.exec_cycles() as f64 - 1.0),
            opt.prefetches_issued,
        );
    }

    println!(
        "\nSequential queries (Q6, Q12) gain from prefetching the tuples they\n\
         stream through; the Index query (Q3) barely benefits — the paper\n\
         recommends the technique for Sequential queries only."
    );
}
