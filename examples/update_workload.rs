//! The extension the paper left as future work: TPC-D's update functions.
//!
//! UF1 inserts new orders (heap appends + b-tree index maintenance), UF2
//! deletes old ones (a tombstoning scan). The paper declined to trace them
//! because Postgres95 only implements relation-level locking; this example
//! runs each processor's refresh pair over disjoint key ranges and shows the
//! memory-system profile writes produce.
//!
//! ```text
//! cargo run --release --example update_workload
//! ```

use dss_workbench::core::experiments;
use dss_workbench::query::{Database, Datum, DbConfig, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The harness runs the full experiment (build, UF1+UF2 on four
    // processors, simulate on the paper's baseline machine).
    println!("running UF1/UF2 on four processors at the paper scale...");
    let runs = experiments::update_experiment(dss_workbench::tpcd::PAPER_SCALE);
    println!("{}", dss_workbench::core::report::render_ext_updates(&runs));

    // And the engine-level view: a single refresh pair, step by step.
    let mut db = Database::build(&DbConfig {
        scale: 0.002,
        nbuffers: 2048,
        ..DbConfig::default()
    });
    let mut session = Session::untraced(0);
    let generator = dss_workbench::tpcd::Generator::new(0.002, 42);

    let (orders, lineitems) = generator.uf1_rows(1, 3, 5_000_000);
    db.execute(
        &dss_workbench::query::insert_orders_sql(&orders),
        &mut session,
    )?;
    db.execute(
        &dss_workbench::query::insert_lineitems_sql(&lineitems),
        &mut session,
    )?;
    let count = db
        .run(
            "select count(*) from orders where o_orderkey >= 5000000",
            &mut session,
        )?
        .rows[0][0]
        .clone();
    println!("UF1 inserted {count} new orders (visible through the o_orderkey index)");
    assert_eq!(count, Datum::Int(3));

    for sql in dss_workbench::query::uf2_sql(5_000_000, 5_000_002) {
        let n = db
            .execute(&sql, &mut session)?
            .affected()
            .ok_or("UF2 statement reported no affected-row count")?;
        println!("UF2: `{}` removed {n} tuples", &sql[..40.min(sql.len())]);
    }
    Ok(())
}
