//! Workspace-level integration tests: the whole pipeline through the facade
//! crate — generator → engine → traces → simulator — on a small database.

use dss_workbench::memsim::{Machine, MachineConfig};
use dss_workbench::query::{Database, Datum, DbConfig, Session};
use dss_workbench::tpcd::params;
use dss_workbench::trace::{DataClass, DataGroup, TraceStats};

fn small_db() -> Database {
    Database::build(&DbConfig {
        scale: 0.002,
        seed: 5,
        nbuffers: 2048,
        ..DbConfig::default()
    })
}

#[test]
fn facade_quickstart_pipeline() {
    let mut db = small_db();
    let mut session = Session::new(0);
    let out = db
        .run(
            "select count(*) from customer where c_mktsegment = 'BUILDING'",
            &mut session,
        )
        .expect("valid query");
    let n = out.rows[0][0].int();
    assert!(n > 0, "some BUILDING customers exist");

    let trace = session.tracer.take();
    let sim = Machine::new(MachineConfig::baseline()).run(&[trace]);
    assert!(sim.exec_cycles() > 0);
    assert!(sim.l1.read_misses.total() > 0);
}

#[test]
fn all_seventeen_queries_trace_and_simulate() {
    let mut db = small_db();
    for q in 1..=17u8 {
        let mut session = Session::new(0);
        let sql = dss_workbench::query::sql_for(q, &params(q, 3));
        db.run(&sql, &mut session)
            .unwrap_or_else(|e| panic!("Q{q}: {e}"));
        let trace = session.tracer.take();
        assert!(!trace.is_empty(), "Q{q} produced no references");
        let sim = Machine::new(MachineConfig::baseline()).run(&[trace]);
        let t = sim.time_breakdown();
        assert!(t.busy > 0.0 && t.busy < 1.0, "Q{q} breakdown sane: {t:?}");
    }
}

#[test]
fn four_processor_run_produces_coherence_traffic() {
    let mut db = small_db();
    let traces: Vec<_> = (0..4)
        .map(|p| {
            let mut session = Session::new(p);
            let sql = dss_workbench::query::sql_for(3, &params(3, p as u64));
            db.run(&sql, &mut session).expect("Q3 runs");
            session.tracer.take()
        })
        .collect();
    let sim = Machine::new(MachineConfig::baseline()).run(&traces);
    // Four processors pinning the same pages must invalidate each other's
    // descriptor and lock lines.
    let coherence = sim.l2.read_misses.by_group_kind(
        DataGroup::Metadata,
        dss_workbench::memsim::MissKind::Coherence,
    );
    assert!(coherence > 0, "expected coherence misses on metadata");
    // And everybody spun at least occasionally on a metalock or had it free.
    assert!(sim.total(|p| p.cycles) > 0);
}

#[test]
fn traces_classify_every_shared_structure() {
    let mut db = small_db();
    let mut session = Session::new(0);
    let sql = dss_workbench::query::sql_for(3, &params(3, 1));
    db.run(&sql, &mut session).expect("Q3 runs");
    let stats = TraceStats::from_trace(&session.tracer.take());
    for class in [
        DataClass::Data,
        DataClass::Index,
        DataClass::BufDesc,
        DataClass::BufLookup,
        DataClass::LockHash,
        DataClass::XidHash,
        DataClass::PrivHeap,
    ] {
        assert!(stats.refs(class) > 0, "Q3 should touch {class}");
    }
}

#[test]
fn engine_results_are_reproducible_across_builds() {
    let mut a = small_db();
    let mut b = small_db();
    let sql = dss_workbench::query::sql_for(6, &params(6, 2));
    let ra = a.run(&sql, &mut Session::untraced(0)).expect("runs").rows;
    let rb = b.run(&sql, &mut Session::untraced(0)).expect("runs").rows;
    assert_eq!(ra, rb);
    assert!(matches!(ra[0][0], Datum::Dec(_)));
}

#[test]
fn address_space_classification_is_consistent() {
    let db = small_db();
    // Every mapped shared region classifies to the class its name implies.
    for vma in &db.space {
        let mid = vma.base + vma.len / 2;
        assert_eq!(
            db.space.classify(mid),
            Some(vma.class),
            "region {}",
            vma.name
        );
    }
    assert!(
        db.space.mapped_bytes() > 8 * 1024 * 1024,
        "pool + metadata mapped"
    );
}
